//! Two-level selection parity and error-bound guarantees at small n.
//!
//! Random hierarchical fabrics (1–5 star domains of 3–9 hosts, seeded
//! loads and trunk utilizations). Three guarantees, all over the full
//! `Result` where applicable:
//!
//! * **Degeneracy**: with a single domain, [`TwoLevelSelector`] is
//!   bit-identical to the flat incremental selector — nodes, quality,
//!   score, iterations, and errors (the release-build counterpart of the
//!   debug assertions inside the selector).
//! * **Feasible and close**: on multi-domain fabrics the two-level
//!   answer is feasible, and the exact flat value exceeds the two-level
//!   achieved value by at most the *reported* error bound — the bound
//!   published in [`nodesel_core::TwoLevelOutcome`] is sound, not
//!   aspirational.
//! * **Refresh parity**: `refresh` after churn equals a fresh selector's
//!   `select` on the churned snapshot, exactly.

use nodesel_core::{select, selector_for, Objective, SelectionRequest, Selector, TwoLevelSelector};
use nodesel_topology::builders::hierarchical;
use nodesel_topology::units::MBPS;
use nodesel_topology::{Direction, LedgerState, NetDelta, NetMetrics, NetSnapshot, ResidualView};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A seeded hierarchical fabric with randomized conditions.
fn random_hierarchy(seed: u64, domains: usize, hosts: usize) -> NetSnapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut topo, _) = hierarchical(
        domains,
        hosts,
        100.0 * MBPS,
        rng.random_range(10.0..80.0) * MBPS,
        rng.random_range(1e-4..5e-3),
    );
    for n in topo.compute_nodes().collect::<Vec<_>>() {
        topo.set_load_avg(n, rng.random_range(0.0..4.0));
    }
    for e in topo.edge_ids().collect::<Vec<_>>() {
        for dir in [Direction::AtoB, Direction::BtoA] {
            let cap = topo.link(e).capacity(dir);
            topo.set_link_used(e, dir, cap * rng.random_range(0.0..0.9));
        }
    }
    NetSnapshot::capture(Arc::new(topo))
}

fn requests(m: usize) -> [SelectionRequest; 3] {
    [
        SelectionRequest::compute(m),
        SelectionRequest::communication(m),
        SelectionRequest::balanced(m),
    ]
}

/// The flat objective value a selection achieved, for bound checks.
fn value(objective: Objective, sel: &nodesel_core::Selection) -> f64 {
    match objective {
        Objective::Compute => sel.quality.min_cpu,
        Objective::Communication => sel.quality.min_bw,
        Objective::Balanced(_) => sel.score,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_domain_degenerates_bit_identically(
        seed in 0u64..100_000,
        hosts in 3usize..10,
    ) {
        let snap = random_hierarchy(seed, 1, hosts);
        for request in requests(1 + (seed as usize) % hosts.min(4)) {
            let mut two = TwoLevelSelector::new();
            let mut flat = selector_for(request.objective);
            let a = two.select(&snap, &request);
            let b = flat.select(&snap, &request);
            prop_assert_eq!(&a, &b, "objective {:?}", request.objective);
            // And through refresh: same churn, same answers.
            let delta = NetDelta {
                nodes: snap
                    .structure_arc()
                    .compute_nodes()
                    .take(2)
                    .map(|n| (n, 2.5))
                    .collect(),
                ..NetDelta::default()
            };
            let next = snap.apply(&delta);
            prop_assert_eq!(
                two.refresh(&next, &delta),
                flat.refresh(&next, &delta),
                "refresh, objective {:?}", request.objective
            );
        }
    }

    #[test]
    fn multi_domain_is_feasible_and_close(
        seed in 0u64..100_000,
        domains in 2usize..6,
        hosts in 3usize..8,
    ) {
        let snap = random_hierarchy(seed, domains, hosts);
        let m = 1 + (seed as usize) % hosts;
        for request in requests(m) {
            let mut two = TwoLevelSelector::new();
            let approx = two.select(&snap, &request).unwrap();
            prop_assert_eq!(approx.nodes.len(), m);
            let outcome = two.last_outcome().unwrap().clone();
            // Exact flat selection on the same conditions.
            let flat = select(&snap.to_topology(), &request).unwrap();
            let flat_value = value(request.objective, &flat);
            prop_assert!(
                outcome.achieved <= outcome.upper_bound + 1e-9,
                "achieved {} above its own bound {}",
                outcome.achieved, outcome.upper_bound
            );
            // The reported error bound must cover the true regret. (Both
            // values are +inf for a single-node communication request —
            // no pairs — which is zero regret, not NaN.)
            let regret = if flat_value <= outcome.achieved {
                0.0
            } else {
                flat_value - outcome.achieved
            };
            prop_assert!(
                regret <= outcome.error_bound + 1e-9,
                "{:?}: flat {} vs two-level {} exceeds reported bound {}",
                request.objective, flat_value, outcome.achieved, outcome.error_bound
            );
        }
    }

    #[test]
    fn refresh_equals_fresh_select_after_churn(
        seed in 0u64..100_000,
        domains in 1usize..5,
        hosts in 3usize..8,
    ) {
        let snap = random_hierarchy(seed, domains, hosts);
        let m = 1 + (seed as usize) % hosts.min(4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03);
        for request in requests(m) {
            let mut sel = TwoLevelSelector::new();
            sel.select(&snap, &request).unwrap();
            // Churn a few loads and one trunk utilization.
            let computes: Vec<_> = snap.structure_arc().compute_nodes().collect();
            let edges: Vec<_> = snap.structure_arc().edge_ids().collect();
            let e = edges[rng.random_range(0..edges.len())];
            let cap = snap.structure_arc().link(e).capacity(Direction::AtoB);
            let delta = NetDelta {
                nodes: (0..3)
                    .map(|_| {
                        (
                            computes[rng.random_range(0..computes.len())],
                            rng.random_range(0.0..5.0),
                        )
                    })
                    .collect(),
                links: vec![(e, Direction::AtoB, cap * rng.random_range(0.0..0.9))],
                ..NetDelta::default()
            };
            let next = snap.apply(&delta);
            let refreshed = sel.refresh(&next, &delta);
            let fresh = TwoLevelSelector::new().select(&next, &request);
            prop_assert_eq!(refreshed, fresh, "objective {:?}", request.objective);
        }
    }

    /// An empty [`LedgerState`] is invisible: the [`ResidualView`] over
    /// it reports every metric bit-identically to the raw snapshot, and
    /// the materialized residual (the ledger's delta applied to the
    /// snapshot) yields bit-identical answers from both the two-level
    /// and the flat selectors.
    #[test]
    fn empty_ledger_residual_is_invisible_to_selection(
        seed in 0u64..100_000,
        domains in 1usize..5,
        hosts in 3usize..8,
    ) {
        let snap = random_hierarchy(seed, domains, hosts);
        let ledger = LedgerState::new();
        let view = ResidualView::new(&snap, &ledger);
        let topo = snap.structure_arc();
        for n in topo.node_ids() {
            prop_assert_eq!(view.load_avg(n).to_bits(), snap.load_avg(n).to_bits());
            prop_assert_eq!(view.node_available(n), snap.node_available(n));
            prop_assert_eq!(view.node_staleness(n), snap.node_staleness(n));
        }
        for e in topo.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                prop_assert_eq!(view.used(e, dir).to_bits(), snap.used(e, dir).to_bits());
                prop_assert_eq!(view.link_available(e), snap.link_available(e));
            }
        }
        let residual = snap.apply(&ledger.to_delta(&snap));
        let m = 1 + (seed as usize) % hosts.min(4);
        for request in requests(m) {
            let a = TwoLevelSelector::new().select(&residual, &request);
            let b = TwoLevelSelector::new().select(&snap, &request);
            prop_assert_eq!(a, b, "two-level, objective {:?}", request.objective);
            let c = selector_for(request.objective).select(&residual, &request);
            let d = selector_for(request.objective).select(&snap, &request);
            prop_assert_eq!(c, d, "flat, objective {:?}", request.objective);
        }
    }
}
