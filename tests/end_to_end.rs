//! End-to-end integration: the full pipeline (testbed simulation →
//! generators → Remos measurement → selection → application execution)
//! reproduces the paper's qualitative claims on a reduced workload.

use nodesel_apps::{fft::fft_program, mri::mri_program, AppModel};
use nodesel_experiments::{mean, run_trials, Condition, Strategy, Testbed, TrialConfig};

fn small_fft() -> AppModel {
    AppModel::Phased(fft_program(16))
}

fn small_mri() -> AppModel {
    AppModel::MasterSlave(mri_program(200))
}

#[test]
fn generators_slow_applications_down() {
    let tb = Testbed::cmu();
    let cfg = TrialConfig::default();
    let app = small_fft();
    let reference = mean(&run_trials(
        &tb,
        &app,
        4,
        Strategy::Random,
        Condition::None,
        &cfg,
        1,
        6,
    ));
    let both = mean(&run_trials(
        &tb,
        &app,
        4,
        Strategy::Random,
        Condition::Both,
        &cfg,
        1,
        6,
    ));
    assert!(
        both > reference * 1.2,
        "load+traffic must visibly slow random placement: {both} vs {reference}"
    );
}

#[test]
fn automatic_selection_recovers_most_of_the_increase() {
    // The paper's headline: the load/traffic-induced increase is roughly
    // halved (or better) by automatic selection.
    let tb = Testbed::cmu();
    let cfg = TrialConfig::default();
    let app = small_fft();
    let reps = 10;
    let reference = mean(&run_trials(
        &tb,
        &app,
        4,
        Strategy::Random,
        Condition::None,
        &cfg,
        5,
        reps,
    ));
    let random = mean(&run_trials(
        &tb,
        &app,
        4,
        Strategy::Random,
        Condition::Both,
        &cfg,
        5,
        reps,
    ));
    let auto = mean(&run_trials(
        &tb,
        &app,
        4,
        Strategy::Automatic,
        Condition::Both,
        &cfg,
        5,
        reps,
    ));
    assert!(auto < random, "auto {auto} must beat random {random}");
    let ratio = (auto - reference).max(0.0) / (random - reference);
    assert!(
        ratio < 0.75,
        "automatic selection should remove a large part of the increase (ratio {ratio:.2})"
    );
}

#[test]
fn master_slave_degrades_more_gracefully_than_loosely_synchronous() {
    // Table 1's structural contrast: relative increase under load+traffic
    // is far smaller for the adaptive MRI than for the barrier-style FFT.
    let tb = Testbed::cmu();
    let cfg = TrialConfig::default();
    let reps = 8;
    let fft = small_fft();
    let mri = small_mri();
    let fft_ref = mean(&run_trials(
        &tb,
        &fft,
        4,
        Strategy::Random,
        Condition::None,
        &cfg,
        9,
        reps,
    ));
    let fft_both = mean(&run_trials(
        &tb,
        &fft,
        4,
        Strategy::Random,
        Condition::Both,
        &cfg,
        9,
        reps,
    ));
    let mri_ref = mean(&run_trials(
        &tb,
        &mri,
        4,
        Strategy::Random,
        Condition::None,
        &cfg,
        9,
        reps,
    ));
    let mri_both = mean(&run_trials(
        &tb,
        &mri,
        4,
        Strategy::Random,
        Condition::Both,
        &cfg,
        9,
        reps,
    ));
    let fft_rel = fft_both / fft_ref;
    let mri_rel = mri_both / mri_ref;
    assert!(
        fft_rel > mri_rel,
        "FFT relative slowdown {fft_rel:.2} must exceed MRI's {mri_rel:.2}"
    );
}

#[test]
fn oracle_is_at_least_as_good_as_measured_automatic() {
    // Ground-truth selection can only help (on average); this pins the
    // measurement layer's staleness as the gap.
    let tb = Testbed::cmu();
    let cfg = TrialConfig::default();
    let app = small_fft();
    let reps = 10;
    let auto = mean(&run_trials(
        &tb,
        &app,
        4,
        Strategy::Automatic,
        Condition::Both,
        &cfg,
        21,
        reps,
    ));
    let oracle = mean(&run_trials(
        &tb,
        &app,
        4,
        Strategy::Oracle,
        Condition::Both,
        &cfg,
        21,
        reps,
    ));
    // Allow a small tolerance: staleness can accidentally help on a finite
    // sample.
    assert!(
        oracle < auto * 1.15,
        "oracle {oracle} should not lose badly to measured auto {auto}"
    );
}
