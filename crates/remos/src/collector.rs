//! SNMP-style periodic collector.
//!
//! The local-area Remos implementation "is based on SNMP processes on
//! network nodes and entails a very low overhead" (paper §2.2). The
//! collector reproduces that measurement pipeline against the simulator:
//! every `period` seconds it reads each host's load average and each
//! directed link's octet counter, converts counter deltas to average
//! utilization over the interval, optionally perturbs the readings with
//! multiplicative Gaussian noise (real SNMP data is not exact), and pushes
//! them into bounded history rings.
//!
//! The sample store is a cloneable [`DriverLogic`] living *inside* the
//! simulator, so a warmed-up measurement pipeline survives [`Sim::fork`]
//! bit-exactly. The per-sample walks run over compute-node and
//! directed-link lists precomputed at install time, pushing into flat
//! fixed-capacity [`Window`] rings — steady-state collection allocates
//! nothing.
//!
//! Everything downstream (the [`crate::Remos`] query API) sees only these
//! sampled histories — never the simulator's ground truth — so selection
//! experiments automatically include measurement staleness and noise.
//!
//! **Degradation.** Sample attempts can fail: structurally (a crashed
//! host or a dead link does not answer) or stochastically
//! ([`CollectorConfig::loss`]). A failed attempt never corrupts the
//! stream — the history window is left untouched, so the published
//! estimate holds its last-known-good value, while the entity's
//! staleness counter and (for reachability failures) availability flag
//! are published through the same [`NetDelta`] stream. Consumers
//! therefore always see values that are either fresh or explicitly
//! flagged stale with decaying confidence, never a silently-fresh lie.

use crate::estimator::Estimator;
use crate::window::Window;
use nodesel_simnet::{DriverId, DriverLogic, Sim, SimTime};
use nodesel_topology::{Direction, EdgeId, NetDelta, NetMetrics, NetSnapshot, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Collector configuration.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// Sampling period in seconds.
    pub period: f64,
    /// Number of samples retained per metric (the "fixed window of
    /// history").
    pub window: usize,
    /// Relative standard deviation of multiplicative measurement noise;
    /// `0.0` gives exact readings.
    pub noise: f64,
    /// Probability that a sample attempt is lost in transit (an SNMP
    /// query timing out); `0.0` means every reachable entity is sampled.
    /// Lost samples leave the published estimate at its last-known-good
    /// value and bump the entity's staleness counter instead.
    pub loss: f64,
    /// Seed for the noise and loss streams.
    pub seed: u64,
    /// Estimator condensing each history window into the annotation
    /// carried by the maintained snapshot stream
    /// (see [`crate::Remos::snapshot`]). Per-query estimators remain
    /// available on the individual query methods.
    pub estimator: Estimator,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            period: 5.0,
            window: 12,
            noise: 0.0,
            loss: 0.0,
            seed: 0,
            estimator: Estimator::Latest,
        }
    }
}

/// The collector's sampled state: per-node load histories and
/// per-directed-link utilization histories. Installed as a driver, so it
/// is part of the simulator and cloned by [`Sim::fork`].
#[derive(Debug, Clone)]
pub(crate) struct Samples {
    pub(crate) config: CollectorConfig,
    /// Structural reference to the network (capacities, speeds, names) —
    /// shared with the simulator, never mutated.
    pub(crate) base: Arc<Topology>,
    /// Compute nodes, in id order (precomputed at install; the per-sample
    /// walk never re-collects node ids).
    computes: Vec<NodeId>,
    /// Directed links in slot order (`edge_index * 2 + direction`).
    links: Vec<(EdgeId, Direction)>,
    /// Load-average history per node index (network-node rings stay
    /// empty).
    pub(crate) host: Vec<Window>,
    /// Utilization (bits/s) history per directed-link slot.
    pub(crate) link: Vec<Window>,
    /// Octet counter at the previous sample, per slot.
    last_bits: Vec<f64>,
    /// Time of the last *successful* counter read per directed slot, so
    /// rates stay gap-correct when an edge misses samples: on recovery
    /// the counter delta is divided by the true elapsed interval, not one
    /// period.
    slot_anchor: Vec<SimTime>,
    /// Missed-sample streak per node index (0 = fresh); only compute
    /// entries are maintained.
    node_misses: Vec<u32>,
    /// Missed-sample streak per edge index (0 = fresh).
    link_misses: Vec<u32>,
    /// Believed-reachable flag per node index, from the last sample
    /// attempt (a crashed host's daemon does not answer).
    node_live: Vec<bool>,
    /// Believed-up flag per edge index, from the last sample attempt.
    link_live: Vec<bool>,
    /// Time of the most recent sample.
    pub(crate) last_sample: Option<SimTime>,
    /// Total samples taken.
    pub(crate) sample_count: u64,
    /// The maintained snapshot stream: the logical topology under
    /// `config.estimator`, re-published after every sample that changed
    /// any estimate. The epoch advances only on change, so consumers can
    /// use it as a cheap "did anything move?" test.
    pub(crate) snap: NetSnapshot,
    /// Cumulative node entries across all published deltas.
    pub(crate) delta_node_entries: u64,
    /// Cumulative directed-link entries across all published deltas.
    pub(crate) delta_link_entries: u64,
    rng: StdRng,
    /// Independent stream for sample-loss draws, so turning loss on does
    /// not perturb the noise sequence (and `loss == 0.0` draws nothing).
    loss_rng: StdRng,
}

impl DriverLogic for Samples {
    fn fire(&mut self, sim: &mut Sim, me: DriverId) {
        self.take_sample(sim);
        sim.schedule_driver_in(self.config.period, me);
    }
}

impl Samples {
    /// The precomputed compute-node list, in id order.
    pub(crate) fn compute_nodes(&self) -> &[NodeId] {
        &self.computes
    }

    /// The precomputed directed-link list, in slot order.
    pub(crate) fn link_slots(&self) -> &[(EdgeId, Direction)] {
        &self.links
    }

    fn noisy(&mut self, x: f64) -> f64 {
        if self.config.noise == 0.0 {
            return x;
        }
        // Box–Muller with a throwaway pair member keeps this simple; noise
        // volume is tiny compared to the simulation.
        let u1: f64 = 1.0 - self.rng.random::<f64>();
        let u2: f64 = self.rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (x * (1.0 + self.config.noise * z)).max(0.0)
    }

    /// One loss-stream draw; never touches the RNG when loss is disabled
    /// (bit-parity with the loss-free collector).
    fn lose_sample(&mut self) -> bool {
        self.config.loss > 0.0 && self.loss_rng.random::<f64>() < self.config.loss
    }

    fn take_sample(&mut self, sim: &Sim) {
        let now = sim.now();
        for i in 0..self.computes.len() {
            let id = self.computes[i];
            // A crashed host's measurement daemon does not answer
            // (structural loss); a live one may still lose the query in
            // transit (stochastic loss). Either way the history window is
            // left untouched — the published estimate stays last-known-good
            // — and the staleness streak grows; only reachability failures
            // flip the availability flag.
            let reachable = sim.node_is_up(id);
            self.node_live[id.index()] = reachable;
            if !reachable || self.lose_sample() {
                self.node_misses[id.index()] = self.node_misses[id.index()].saturating_add(1);
                continue;
            }
            self.node_misses[id.index()] = 0;
            let v = sim.load_avg(id);
            let v = self.noisy(v);
            self.host[id.index()].push(v);
        }
        // Both directions of an edge share one management query: they are
        // read, lost, and aged together.
        for pair in 0..self.link_misses.len() {
            let reachable = sim.link_effective_up(self.links[pair * 2].0);
            self.link_live[pair] = reachable;
            if !reachable || self.lose_sample() {
                self.link_misses[pair] = self.link_misses[pair].saturating_add(1);
                continue;
            }
            self.link_misses[pair] = 0;
            for slot in [pair * 2, pair * 2 + 1] {
                let (e, dir) = self.links[slot];
                // Exact octet counter at the sample instant: the flow
                // table accumulates bits on every rate change and
                // extrapolates at the current rate on read, so lazy
                // settlement is invisible to this measurement path.
                let bits = sim.link_bits(e, dir);
                let dt = now.seconds_since(self.slot_anchor[slot]);
                let rate = if dt > 0.0 {
                    (bits - self.last_bits[slot]).max(0.0) / dt
                } else {
                    0.0
                };
                self.last_bits[slot] = bits;
                self.slot_anchor[slot] = now;
                let rate = self.noisy(rate);
                self.link[slot].push(rate);
            }
        }
        self.last_sample = Some(now);
        self.sample_count += 1;
        self.publish_snapshot();
    }

    /// Re-estimates every annotation and advances the snapshot stream by
    /// one epoch when anything changed. The arithmetic matches the
    /// per-query topology path exactly (`.max(0.0)` on loads,
    /// `.clamp(0.0, capacity)` on utilizations), so the maintained
    /// snapshot stays bit-identical to a fresh query.
    fn publish_snapshot(&mut self) {
        let est = self.config.estimator;
        let mut delta = NetDelta::default();
        for &id in &self.computes {
            let load = est.estimate(&self.host[id.index()]).max(0.0);
            if load.to_bits() != self.snap.load_avg(id).to_bits() {
                delta.nodes.push((id, load));
            }
        }
        for (slot, &(e, dir)) in self.links.iter().enumerate() {
            let cap = self.base.link(e).capacity(dir);
            let used = est.estimate(&self.link[slot]).clamp(0.0, cap);
            if used.to_bits() != self.snap.used(e, dir).to_bits() {
                delta.links.push((e, dir, used));
            }
        }
        // Health transitions: availability flips and staleness movement
        // ride the same incremental delta stream, so a snapshot value is
        // always either fresh or explicitly flagged stale — never stale
        // and presented fresh.
        for &id in &self.computes {
            if self.node_live[id.index()] != self.snap.node_available(id) {
                delta.avail_nodes.push((id, self.node_live[id.index()]));
            }
            if self.node_misses[id.index()] != self.snap.node_staleness(id) {
                delta.stale_nodes.push((id, self.node_misses[id.index()]));
            }
        }
        for pair in 0..self.link_misses.len() {
            let e = self.links[pair * 2].0;
            if self.link_live[pair] != self.snap.link_available(e) {
                delta.avail_links.push((e, self.link_live[pair]));
            }
            if self.link_misses[pair] != self.snap.link_staleness(e) {
                delta.stale_links.push((e, self.link_misses[pair]));
            }
        }
        if !delta.is_empty() {
            self.delta_node_entries += delta.nodes.len() as u64;
            self.delta_link_entries += delta.links.len() as u64;
            self.snap = self.snap.apply(&delta);
        }
    }
}

/// Installs a collector into the simulator and returns its driver id.
///
/// The first sample is taken one period after installation (counters need
/// a baseline interval), then every period thereafter, forever. Use
/// [`Sim::run_until`] to bound execution.
pub(crate) fn install(sim: &mut Sim, config: CollectorConfig) -> DriverId {
    install_impl(sim, None, None, config)
}

/// Installs a collector *scoped to a subset of nodes* and homed at one of
/// them: it samples only `scope`'s compute nodes and the links with both
/// endpoints inside `scope`, and its firings are sequenced in (and, under
/// the parallel engine, executed by) `home`'s partition domain. When
/// `scope` covers a whole domain the collector never reads foreign state,
/// so the owning shard can run it without escalating.
pub(crate) fn install_scoped(
    sim: &mut Sim,
    home: NodeId,
    scope: &[NodeId],
    config: CollectorConfig,
) -> DriverId {
    install_impl(sim, Some(home), Some(scope), config)
}

fn install_impl(
    sim: &mut Sim,
    home: Option<NodeId>,
    scope: Option<&[NodeId]>,
    config: CollectorConfig,
) -> DriverId {
    assert!(config.period > 0.0, "sampling period must be positive");
    assert!(config.window >= 1, "window must hold at least one sample");
    assert!(
        (0.0..1.0).contains(&config.loss),
        "sample-loss probability must be in [0, 1)"
    );
    let base = sim.topology_shared();
    // In-scope membership mask; everything is in scope for a full
    // collector. Node lists stay in id order and link pairs contiguous
    // either way.
    let inside: Vec<bool> = match scope {
        None => vec![true; base.node_count()],
        Some(scope) => {
            let mut inside = vec![false; base.node_count()];
            for &n in scope {
                inside[n.index()] = true;
            }
            inside
        }
    };
    let computes: Vec<NodeId> = base.compute_nodes().filter(|n| inside[n.index()]).collect();
    let links: Vec<(EdgeId, Direction)> = base
        .edge_ids()
        .filter(|&e| {
            let l = base.link(e);
            inside[l.a().index()] && inside[l.b().index()]
        })
        .flat_map(|e| [(e, Direction::AtoB), (e, Direction::BtoA)])
        .collect();
    debug_assert!(
        scope.is_some()
            || links
                .iter()
                .enumerate()
                .all(|(slot, &(e, dir))| slot == e.index() * 2 + dir as usize)
    );
    // Baseline the octet counters at install time.
    let last_bits: Vec<f64> = links
        .iter()
        .map(|&(e, dir)| sim.link_bits(e, dir))
        .collect();
    let host = (0..base.node_count())
        .map(|_| Window::new(config.window))
        .collect();
    let link = (0..links.len())
        .map(|_| Window::new(config.window))
        .collect();
    // Epoch 0: a just-started monitor reports an unloaded network — zero
    // load on every compute node, zero utilization on every directed link
    // (annotations the structure may carry describe ground truth the
    // monitor has not measured yet). Network-node load entries are copied
    // as-is; they never influence derived metrics.
    let mut annotated = (*base).clone();
    for &id in &computes {
        annotated.set_load_avg(id, 0.0);
    }
    for &(e, dir) in &links {
        annotated.set_link_used(e, dir, 0.0);
    }
    let snap = NetSnapshot::capture(Arc::new(annotated));
    let node_count = base.node_count();
    let pair_count = links.len() / 2;
    let samples = Samples {
        config,
        base,
        computes,
        links,
        host,
        link,
        last_bits,
        slot_anchor: vec![sim.now(); pair_count * 2],
        node_misses: vec![0; node_count],
        link_misses: vec![0; pair_count],
        node_live: vec![true; node_count],
        link_live: vec![true; pair_count],
        last_sample: Some(sim.now()),
        sample_count: 0,
        snap,
        delta_node_entries: 0,
        delta_link_entries: 0,
        rng: StdRng::seed_from_u64(config.seed),
        loss_rng: StdRng::seed_from_u64(config.seed ^ 0x4C05_5E5A),
    };
    let id = match home {
        Some(node) => sim.install_driver_at(node, samples),
        None => sim.install_driver(samples),
    };
    sim.schedule_driver_in(config.period, id);
    id
}

/// Convenience used by tests: the most recently sampled load average of
/// a node, if any sample exists.
#[cfg(test)]
pub(crate) fn latest_host(samples: &Samples, node: NodeId) -> Option<f64> {
    samples.host[node.index()].latest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    fn samples(sim: &Sim, id: DriverId) -> &Samples {
        sim.driver::<Samples>(id)
    }

    #[test]
    fn sampling_cadence() {
        let (topo, _) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let s = install(
            &mut sim,
            CollectorConfig {
                period: 5.0,
                ..CollectorConfig::default()
            },
        );
        sim.run_until(SimTime::from_secs(26));
        assert_eq!(samples(&sim, s).sample_count, 5);
    }

    #[test]
    fn load_history_tracks_running_job() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let s = install(&mut sim, CollectorConfig::default());
        sim.start_compute(ids[0], 1e9, |_| {});
        sim.run_until(SimTime::from_secs(600));
        let st = samples(&sim, s);
        let h0 = latest_host(st, ids[0]).unwrap();
        let h1 = latest_host(st, ids[1]).unwrap();
        assert!(h0 > 0.9, "loaded host measured {h0}");
        assert!(h1 < 0.01, "idle host measured {h1}");
    }

    #[test]
    fn link_history_measures_flow_rate() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let e = topo.edge_ids().next().unwrap();
        let fwd = topo
            .link(e)
            .direction_from(topo.node_by_name("hub").unwrap());
        let mut sim = Sim::new(topo);
        let s = install(&mut sim, CollectorConfig::default());
        // Long flow n0 -> n1 at full line rate (crosses hub).
        sim.start_transfer(ids[0], ids[1], 1e18, |_| {});
        sim.run_until(SimTime::from_secs(60));
        let st = samples(&sim, s);
        // The hub->n1 access link direction carries 100 Mbps; locate its
        // slot via the second edge (hub-n1 is edge index 1).
        let e1 = nodesel_topology::EdgeId::from_index(1);
        let slot = e1.index() * 2 + fwd as usize;
        let measured = st.link[slot].latest().unwrap();
        assert!(
            (measured - 100.0 * MBPS).abs() < MBPS,
            "measured {measured}"
        );
    }

    #[test]
    fn window_is_bounded() {
        let (topo, _) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let s = install(
            &mut sim,
            CollectorConfig {
                period: 1.0,
                window: 4,
                ..CollectorConfig::default()
            },
        );
        sim.run_until(SimTime::from_secs(60));
        let st = samples(&sim, s);
        for ring in &st.host {
            assert!(ring.len() <= 4);
        }
        for ring in &st.link {
            assert!(ring.len() <= 4);
        }
    }

    #[test]
    fn noise_is_deterministic_and_nonnegative() {
        let run = |seed| {
            let (topo, ids) = star(2, 100.0 * MBPS);
            let mut sim = Sim::new(topo);
            let s = install(
                &mut sim,
                CollectorConfig {
                    noise: 0.2,
                    seed,
                    ..CollectorConfig::default()
                },
            );
            sim.start_compute(ids[0], 1e9, |_| {});
            sim.run_until(SimTime::from_secs(300));
            let st = samples(&sim, s);
            let v: Vec<f64> = st.host[ids[0].index()].iter().collect();
            assert!(v.iter().all(|&x| x >= 0.0));
            v
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn crashed_node_goes_stale_not_silently_fresh() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let s = install(&mut sim, CollectorConfig::default());
        sim.start_compute_detached(ids[0], 1e9);
        sim.run_until(SimTime::from_secs(60));
        let before = samples(&sim, s).snap.clone();
        assert!(before.node_available(ids[0]));
        assert_eq!(before.node_staleness(ids[0]), 0);
        sim.crash_node(ids[0]);
        sim.run_until(SimTime::from_secs(120));
        let st = samples(&sim, s);
        // Unreachable: flagged down, aging, estimate frozen at the
        // last-known-good value rather than silently refreshed.
        assert!(!st.snap.node_available(ids[0]));
        assert!(st.snap.node_staleness(ids[0]) > 0);
        assert_eq!(
            st.snap.load_avg(ids[0]).to_bits(),
            before.load_avg(ids[0]).to_bits()
        );
        assert_eq!(st.snap.effective_cpu(ids[0]), 0.0);
        // The healthy node keeps sampling fresh.
        assert!(st.snap.node_available(ids[1]));
        assert_eq!(st.snap.node_staleness(ids[1]), 0);
        // Recovery: reboot, next samples are fresh again.
        sim.reboot_node(ids[0]);
        sim.run_until(SimTime::from_secs(180));
        let st = samples(&sim, s);
        assert!(st.snap.node_available(ids[0]));
        assert_eq!(st.snap.node_staleness(ids[0]), 0);
    }

    #[test]
    fn dead_link_reports_zero_available_bandwidth() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let e = topo.edge_ids().next().unwrap();
        let mut sim = Sim::new(topo);
        let s = install(&mut sim, CollectorConfig::default());
        sim.start_transfer(ids[0], ids[1], 1e18, |_| {});
        sim.run_until(SimTime::from_secs(30));
        sim.set_link_up(e, false);
        sim.run_until(SimTime::from_secs(60));
        let st = samples(&sim, s);
        assert!(!st.snap.link_available(e));
        assert!(st.snap.link_staleness(e) > 0);
        // Down links advertise zero available bandwidth — never NaN and
        // never their idle capacity.
        assert_eq!(st.snap.available(e, Direction::AtoB), 0.0);
        assert_eq!(st.snap.bw(e), 0.0);
        assert_eq!(st.snap.bwfactor(e), 0.0);
        sim.set_link_up(e, true);
        sim.run_until(SimTime::from_secs(120));
        let st = samples(&sim, s);
        assert!(st.snap.link_available(e));
        assert_eq!(st.snap.link_staleness(e), 0);
        // The resumed flow saturates the link again: fresh measurement,
        // finite non-negative availability.
        assert!(st.snap.used(e, Direction::AtoB) > 0.0 || st.snap.used(e, Direction::BtoA) > 0.0);
        assert!(st.snap.bw(e) >= 0.0 && st.snap.bw(e).is_finite());
    }

    #[test]
    fn sample_loss_ages_estimates_and_is_deterministic() {
        let run = |seed| {
            let (topo, ids) = star(3, 100.0 * MBPS);
            let mut sim = Sim::new(topo);
            let s = install(
                &mut sim,
                CollectorConfig {
                    loss: 0.5,
                    seed,
                    window: 1000,
                    ..CollectorConfig::default()
                },
            );
            sim.start_compute_detached(ids[0], 1e9);
            sim.run_until(SimTime::from_secs(300));
            let st = samples(&sim, s);
            // Heavy loss: histories are shorter than the sample count,
            // but every entity remains either fresh or flagged stale.
            assert!(st.host[ids[0].index()].len() < st.sample_count as usize);
            for &id in st.compute_nodes() {
                assert!(st.snap.node_available(id), "loss is not unreachability");
            }
            let stale: Vec<u32> = st
                .compute_nodes()
                .iter()
                .map(|&id| st.snap.node_staleness(id))
                .collect();
            (stale, st.snap.load_avg(ids[0]).to_bits(), st.snap.epoch())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    /// Two disconnected stars in one topology; `groups[s][0]` is the hub,
    /// the rest are compute hosts.
    fn twin_stars() -> (Topology, Vec<Vec<NodeId>>) {
        let mut topo = Topology::new();
        let mut groups = Vec::new();
        for s in 0..2 {
            let hub = topo.add_network_node(format!("g{s}-hub"));
            let mut nodes = vec![hub];
            for h in 0..3 {
                let n = topo.add_compute_node(format!("g{s}-h{h}"), 1.0);
                topo.add_link(hub, n, 100.0 * MBPS);
                nodes.push(n);
            }
            groups.push(nodes);
        }
        (topo, groups)
    }

    #[test]
    fn scoped_collector_matches_full_collector_on_its_scope() {
        let (topo, groups) = twin_stars();
        // Group 0's links are exactly the first three edges added.
        let in_scope = |e: EdgeId| e.index() < 3;
        type LinkHist = (EdgeId, Direction, Vec<f64>);
        let run = |scoped: bool| -> (Vec<Vec<f64>>, Vec<LinkHist>, Vec<u64>) {
            let mut sim = Sim::new(topo.clone());
            let cfg = CollectorConfig::default(); // exact: noise 0, loss 0
            let id = if scoped {
                install_scoped(&mut sim, groups[0][1], &groups[0], cfg)
            } else {
                install(&mut sim, cfg)
            };
            // Identical workload either way, in both groups.
            sim.start_compute_detached(groups[0][1], 1e9);
            sim.start_transfer_detached(groups[0][1], groups[0][2], 1e18);
            sim.start_compute_detached(groups[1][1], 1e9);
            sim.run_until(SimTime::from_secs(60));
            let st = samples(&sim, id);
            let hosts = groups[0][1..]
                .iter()
                .map(|&n| st.host[n.index()].iter().collect())
                .collect();
            let links = st
                .link_slots()
                .iter()
                .enumerate()
                .filter(|&(_, &(e, _))| in_scope(e))
                .map(|(slot, &(e, dir))| (e, dir, st.link[slot].iter().collect()))
                .collect();
            let snap_loads = groups[0][1..]
                .iter()
                .map(|&n| st.snap.load_avg(n).to_bits())
                .collect();
            (hosts, links, snap_loads)
        };
        let full = run(false);
        let scoped = run(true);
        assert_eq!(full, scoped);
        assert!(!full.1.is_empty(), "no in-scope link histories compared");

        // And the scoped collector truly never touched group 1.
        let mut sim = Sim::new(topo.clone());
        let id = install_scoped(
            &mut sim,
            groups[0][1],
            &groups[0],
            CollectorConfig::default(),
        );
        sim.start_compute_detached(groups[1][1], 1e9);
        sim.run_until(SimTime::from_secs(60));
        let st = samples(&sim, id);
        assert!(st.sample_count > 0);
        assert_eq!(st.host[groups[1][1].index()].len(), 0);
        assert!(st.link_slots().iter().all(|&(e, _)| in_scope(e)));
    }

    #[test]
    fn collector_keeps_sim_forkable_and_forks_agree() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let s = install(&mut sim, CollectorConfig::default());
        sim.start_compute_detached(ids[0], 1e9);
        sim.run_until(SimTime::from_secs(120));
        assert!(sim.can_fork(), "collector left a closure pending");
        let mut fork = sim.fork();
        fork.run_until(SimTime::from_secs(600));
        sim.run_until(SimTime::from_secs(600));
        let (a, b) = (samples(&sim, s), samples(&fork, s));
        assert_eq!(a.sample_count, b.sample_count);
        assert_eq!(
            latest_host(a, ids[0]).map(f64::to_bits),
            latest_host(b, ids[0]).map(f64::to_bits)
        );
    }
}
