//! Specification-driven selection (§2.1): applications describe their
//! pattern and requirements declaratively; the framework compiles that to
//! the right algorithm, and the returned node order feeds the launcher
//! positionally (master first, pipeline stage order).
//!
//! Run with: `cargo run -p nodesel-experiments --example spec_driven`

use nodesel_core::spec::{select_for_spec, AppSpec, CommPattern};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;
use std::collections::HashSet;

fn main() {
    let tb = cmu_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    // Some background state: load on panama machines, a stream over the
    // ATM trunk.
    for i in 1..=4 {
        sim.start_compute(tb.m(i), 1e9, |_| {});
    }
    sim.start_transfer(tb.m(9), tb.m(17), 1e15, |_| {});
    sim.run_for(120.0);
    let snapshot = remos.snapshot(&sim).to_topology();
    let names = |nodes: &[nodesel_topology::NodeId]| {
        nodes
            .iter()
            .map(|&n| tb.topo.node(n).name().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };

    // 1. A communication-heavy all-to-all solver.
    let spec = AppSpec {
        comm_fraction: 0.7,
        ..AppSpec::new("spectral solver", 4, CommPattern::AllToAll)
    };
    let sel = select_for_spec(&snapshot, &spec).unwrap();
    println!(
        "{:<18} -> [{}] (score {:.2})",
        spec.name,
        names(&sel.ordered_nodes),
        sel.selection.score
    );

    // 2. A master–slave reconstruction job: master goes first.
    let spec = AppSpec::new("mri reconstruction", 4, CommPattern::MasterSlave);
    let sel = select_for_spec(&snapshot, &spec).unwrap();
    println!(
        "{:<18} -> master {} | slaves [{}]",
        spec.name,
        tb.topo.node(sel.ordered_nodes[0]).name(),
        names(&sel.ordered_nodes[1..])
    );

    // 3. A client-server service whose servers must run on the suez pair.
    let pool: HashSet<_> = [tb.m(17), tb.m(18)].into_iter().collect();
    let spec = AppSpec::new(
        "render service",
        5,
        CommPattern::ClientServer {
            servers: 1,
            server_pool: Some(pool),
        },
    );
    let sel = select_for_spec(&snapshot, &spec).unwrap();
    let groups = sel.groups.as_ref().unwrap();
    println!(
        "{:<18} -> servers [{}] clients [{}]",
        spec.name,
        names(groups.group("servers").unwrap()),
        names(groups.group("clients").unwrap())
    );

    // 4. A latency-sensitive coupled code: everything within 0.25 ms.
    let spec = AppSpec {
        max_latency: Some(0.25e-3),
        ..AppSpec::new("tight coupling", 4, CommPattern::AllToAll)
    };
    let sel = select_for_spec(&snapshot, &spec).unwrap();
    let routes = tb.topo.routes();
    println!(
        "{:<18} -> [{}] (max pairwise latency {:.3} ms)",
        spec.name,
        names(&sel.ordered_nodes),
        nodesel_core::pairwise_latency(&routes, &sel.selection.nodes) * 1e3
    );
}
