//! Parallel discrete-event execution: one worker per shard of the
//! partitioned simulator, conservative window synchronization, and a
//! serial replay oracle.
//!
//! # Model
//!
//! [`ParallelSim`] splits a partitioned [`Sim`] (see
//! [`Sim::set_partition`]) into shards — filtered forks each executing a
//! contiguous group of domains — and drives them on scoped worker
//! threads in lock-step *windows*. Before each window every worker
//! publishes its shard's next-event time; the window barrier's leader
//! (see [`WindowGate`]) folds them into a boundary
//! `min(next) + lookahead`, where the lookahead is the minimum latency
//! of the links crossing the partition ([`ShardPlan::lookahead_secs`]);
//! then every shard runs its own event queue up to the boundary — and,
//! on the same barrier round, one further sub-window to
//! `boundary + lookahead`: once every shard has drained to the shared
//! boundary, that second bound is already conservative without another
//! next-event exchange, so each barrier round covers two windows. With
//! an empty boundary (fully disconnected domains) the window is
//! unbounded and the whole run is a single pass per shard.
//!
//! # Escalate-and-replay
//!
//! Unlike classical conservative PDES, shards exchange **no** events:
//! bandwidth allocation is global max-min, so a single cross-domain flow
//! couples the shards it touches *continuously*, not at discrete message
//! times. Instead, every cross-domain interaction — scheduling into a
//! foreign domain, a transfer whose path leaves the owned domains, even
//! reading a foreign node's state — trips the shard's escalation flag.
//! The run then discards **all** shard state and replays the untouched
//! pre-split master serially, which *is* the bit-exact semantics, and
//! stays serial from then on. The window barrier's role in this hybrid
//! is honest but modest: it bounds how far shards can run past an
//! escalation before it is detected, so the wasted optimistic work per
//! escalation is at most the two sub-windows of one barrier round, not
//! the whole horizon.
//!
//! The payoff is the common case this repo benches: federated topologies
//! whose subnets exchange nothing never escalate, and the parallel run
//! produces **byte-identical** event traces, completion times, and
//! collector samples to the serial engine — dispatch keys
//! ([`crate::EventKey`]) totally order events across shards, so a k-way
//! merge of per-shard traces reproduces the serial trace exactly (see
//! `sharded_forks_reproduce_serial_partitioned_run` in the engine
//! tests).
//!
//! # Fallbacks
//!
//! Plans that cannot or should not parallelize run the plain serial
//! engine behind the same API: a single domain, a single worker thread,
//! or a zero-lookahead boundary (a zero-latency cross-domain link, where
//! conservative windows would have zero width and deadlock the
//! lock-step; rejected with a warning as required — never a hang).

use crate::engine::{Sim, SimStats};
use crate::gate::WindowGate;
use crate::time::{EventKey, SimTime};
use crate::trace::TraceEvent;
use nodesel_topology::ShardPlan;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A shard owned by exactly one worker thread at a time.
///
/// `Sim` is `!Send` because it may hold boxed user closures
/// (`Sim::schedule_in`, completion callbacks). A shard is created from a
/// fork with no pending user closures (`Sim::can_fork` is asserted by
/// the fork), every closure created afterwards is created *and consumed*
/// on the worker that owns the shard, and [`crate::DriverLogic`]'s
/// `Send` bound keeps cloned driver state free of thread-bound types —
/// so moving a whole shard to a worker and back is sound.
#[allow(unsafe_code)]
mod send_sim {
    use crate::engine::Sim;

    pub(super) struct SendSim(pub(super) Sim);

    // SAFETY: see the module comment — a SendSim is only ever accessed by
    // one thread at a time (moved via `&mut` into exactly one scoped
    // worker), and no `!Send` content crosses a shard boundary.
    unsafe impl Send for SendSim {}
}
use send_sim::SendSim;

/// Sentinel window boundary broadcast by the leader when any shard has
/// escalated: workers stop instead of opening another window.
const STOP: u64 = u64::MAX;

/// The parallel engine. See the module docs for the execution model.
pub struct ParallelSim {
    /// Always `Some` between method calls; taken temporarily when the
    /// sharded mode collapses into serial replay.
    mode: Option<Mode>,
}

enum Mode {
    /// Degenerate, rejected, or escalated configurations run the plain
    /// serial engine behind the same API.
    Serial {
        sim: Sim,
        fallback: Option<&'static str>,
    },
    Sharded(Sharded),
}

struct Sharded {
    /// The pre-split simulator, untouched since the split: the replay
    /// oracle if any shard escalates, and the holder of pre-split
    /// history (stats, trace).
    master: Sim,
    shards: Vec<SendSim>,
    /// Domain id → index into `shards`.
    shard_of: Vec<usize>,
    /// `master.stats()` at the split, subtracted from each shard's
    /// totals when merging (every shard inherited these counts).
    base_stats: SimStats,
    /// Conservative window width; `None` = unbounded (empty boundary).
    lookahead_secs: Option<f64>,
    /// The horizon reached by completed `run_until` calls.
    now: SimTime,
}

impl ParallelSim {
    /// Splits `sim` across up to `threads` workers according to `plan`.
    ///
    /// `sim` must already be partitioned with exactly `plan`'s
    /// assignment ([`Sim::set_partition`]) and hold no pending user
    /// closures ([`Sim::can_fork`]). Degenerate configurations — one
    /// domain, one thread — fall back to the serial engine silently; a
    /// zero-lookahead plan falls back with a warning (conservative
    /// windows would deadlock on zero width).
    pub fn new(sim: Sim, plan: &ShardPlan, threads: usize) -> ParallelSim {
        assert_eq!(
            plan.num_domains(),
            sim.num_domains(),
            "simulator was not partitioned with this plan"
        );
        assert!(
            (0..sim.topology().node_count())
                .all(|i| sim.domain_of(nodesel_topology::NodeId::from_index(i))
                    == plan.node_domain()[i]),
            "simulator was partitioned with a different assignment"
        );
        let fallback = if plan.zero_lookahead() {
            eprintln!(
                "nodesel-simnet: zero-lookahead shard plan (zero-latency boundary link); \
                 falling back to serial execution"
            );
            Some("zero lookahead")
        } else if plan.is_single() {
            Some("single domain")
        } else if threads <= 1 {
            Some("single thread")
        } else {
            None
        };
        if fallback.is_some() {
            return ParallelSim {
                mode: Some(Mode::Serial { sim, fallback }),
            };
        }
        let groups = contiguous_groups(plan.num_domains(), threads);
        let mut shard_of = vec![0usize; plan.num_domains() as usize];
        for (i, group) in groups.iter().enumerate() {
            for &d in group {
                shard_of[d as usize] = i;
            }
        }
        let shards = groups
            .iter()
            .map(|group| SendSim(sim.shard_fork(group)))
            .collect();
        let base_stats = sim.stats();
        let now = sim.now();
        ParallelSim {
            mode: Some(Mode::Sharded(Sharded {
                master: sim,
                shards,
                shard_of,
                base_stats,
                lookahead_secs: plan.lookahead_secs(),
                now,
            })),
        }
    }

    /// True while shards are actually executing in parallel.
    pub fn is_parallel(&self) -> bool {
        matches!(self.mode(), Mode::Sharded(_))
    }

    /// Why this engine is running serially, if it is: `"single domain"`,
    /// `"single thread"`, `"zero lookahead"`, or `"escalated"` after a
    /// cross-domain interaction forced a replay.
    pub fn fallback(&self) -> Option<&'static str> {
        match self.mode() {
            Mode::Serial { fallback, .. } => *fallback,
            Mode::Sharded(_) => None,
        }
    }

    /// Current simulated time: the horizon reached by `run_until`.
    pub fn now(&self) -> SimTime {
        match self.mode() {
            Mode::Serial { sim, .. } => sim.now(),
            Mode::Sharded(sh) => sh.now,
        }
    }

    /// Merged statistics across shards (pre-split counts attributed
    /// once).
    pub fn stats(&self) -> SimStats {
        match self.mode() {
            Mode::Serial { sim, .. } => sim.stats(),
            Mode::Sharded(sh) => {
                let mut total = sh.base_stats;
                for shard in &sh.shards {
                    let s = shard.0.stats();
                    total.completed_tasks += s.completed_tasks - sh.base_stats.completed_tasks;
                    total.completed_flows += s.completed_flows - sh.base_stats.completed_flows;
                    total.events += s.events - sh.base_stats.events;
                }
                total
            }
        }
    }

    /// The simulator executing `domain`, for domain-local reads between
    /// runs (collector sample stores, driver state). Reading *foreign*
    /// domains' ground truth through the returned shard trips its
    /// escalation flag and forces the next run to replay serially.
    pub fn shard(&self, domain: u16) -> &Sim {
        match self.mode() {
            Mode::Serial { sim, .. } => sim,
            Mode::Sharded(sh) => &sh.shards[sh.shard_of[domain as usize]].0,
        }
    }

    /// Drains the merged trace: pre-split events plus every shard's
    /// window of history, k-way merged by dispatch key into exact serial
    /// order. After an escalation replay, the replayed span is recorded
    /// afresh — interleave `take_trace` with runs only on runs that did
    /// not escalate, or take it once at the end.
    pub fn take_trace(&mut self) -> (Vec<TraceEvent>, u64) {
        match self.mode_mut() {
            Mode::Serial { sim, .. } => sim.take_trace(),
            Mode::Sharded(sh) => {
                let (mut keyed, mut dropped) = sh.master.take_keyed_trace();
                for shard in &mut sh.shards {
                    let (k, d) = shard.0.take_keyed_trace();
                    keyed.extend(k);
                    dropped += d;
                }
                keyed.sort_by_key(|&(k, _): &(EventKey, TraceEvent)| k);
                (keyed.into_iter().map(|(_, e)| e).collect(), dropped)
            }
        }
    }

    /// Advances all shards to `limit` (finite). On escalation the shards
    /// are discarded and the pre-split master replays serially — the
    /// bit-exact semantics — and the engine stays serial.
    pub fn run_until(&mut self, limit: SimTime) {
        assert!(
            limit < SimTime::NEVER,
            "parallel runs need a finite horizon"
        );
        match self.mode_mut() {
            Mode::Serial { sim, .. } => {
                sim.run_until(limit);
                return;
            }
            Mode::Sharded(sh) => {
                if limit <= sh.now {
                    return;
                }
                if sh.run_windows(limit) {
                    sh.now = limit;
                    return;
                }
            }
        }
        // A shard escalated: its state (and its siblings') may depend on
        // foreign domains it never saw. Replay the untouched master from
        // the split serially and stay serial.
        eprintln!(
            "nodesel-simnet: cross-domain interaction escalated a shard; \
             replaying serially from the split point"
        );
        let Some(Mode::Sharded(sh)) = self.mode.take() else {
            unreachable!("escalation only arises in sharded mode");
        };
        let mut sim = sh.master;
        sim.run_until(limit);
        self.mode = Some(Mode::Serial {
            sim,
            fallback: Some("escalated"),
        });
    }

    /// Runs for `secs` simulated seconds past the current horizon.
    pub fn run_for(&mut self, secs: f64) {
        let limit = self.now().after_secs_f64(secs);
        self.run_until(limit);
    }

    /// Collapses into a single serial [`Sim`] at the current horizon.
    /// A sharded engine replays its pre-split master serially — the
    /// shards' merged results are bit-identical to that replay by the
    /// parity invariant, so this trades time for a plain simulator that
    /// supports every serial-only operation (forking, global reads).
    pub fn into_sim(mut self) -> Sim {
        match self.mode.take().expect("mode is always present") {
            Mode::Serial { sim, .. } => sim,
            Mode::Sharded(sh) => {
                let mut sim = sh.master;
                sim.run_until(sh.now);
                sim
            }
        }
    }

    fn mode(&self) -> &Mode {
        self.mode.as_ref().expect("mode is always present")
    }

    fn mode_mut(&mut self) -> &mut Mode {
        self.mode.as_mut().expect("mode is always present")
    }
}

impl Sharded {
    /// Runs every shard to `limit` in conservative windows. Returns
    /// false as soon as any shard escalates (shard state is then
    /// invalid).
    fn run_windows(&mut self, limit: SimTime) -> bool {
        let workers = self.shards.len();
        let gate = WindowGate::new(workers);
        let nexts: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect();
        let window = AtomicU64::new(0);
        let escalated = AtomicBool::new(false);
        let lookahead_ticks = self
            .lookahead_secs
            .map(|la| SimTime::ZERO.after_secs_f64(la).0);
        std::thread::scope(|scope| {
            for (w, shard) in self.shards.iter_mut().enumerate() {
                let (gate, nexts, window, escalated) = (&gate, &nexts, &window, &escalated);
                scope.spawn(move || {
                    let sim = &mut shard.0;
                    loop {
                        nexts[w].store(
                            sim.next_event_time().map_or(u64::MAX, |t| t.0),
                            Ordering::Relaxed,
                        );
                        gate.arrive(|| {
                            let end = if escalated.load(Ordering::Relaxed) {
                                STOP
                            } else {
                                let m = nexts
                                    .iter()
                                    .map(|n| n.load(Ordering::Relaxed))
                                    .min()
                                    .expect("at least one worker");
                                match lookahead_ticks {
                                    // Empty boundary: domains are fully
                                    // independent, one unbounded window.
                                    None => limit.0,
                                    Some(la) => {
                                        if m >= limit.0 {
                                            limit.0
                                        } else {
                                            limit.0.min(m.saturating_add(la))
                                        }
                                    }
                                }
                            };
                            window.store(end, Ordering::Relaxed);
                        });
                        let end = window.load(Ordering::Relaxed);
                        // Escalation from the previous round (including
                        // the final one) stops everyone here, before the
                        // horizon check.
                        if end == STOP {
                            return;
                        }
                        sim.run_until_or_escalate(SimTime(end));
                        if sim.escalated() {
                            // Keep participating in the barrier so the
                            // leader can broadcast STOP — returning now
                            // would strand the other workers.
                            escalated.store(true, Ordering::Relaxed);
                        }
                        // Every exit below depends only on values shared
                        // by all workers (`end`, `end2`, constants), so
                        // the workers always leave in the same round and
                        // nobody is stranded at the barrier.
                        if end >= limit.0 {
                            return;
                        }
                        // Second sub-window on the same barrier round:
                        // once every shard has drained to `end`, the next
                        // conservative bound `end + lookahead` is already
                        // known — no new next-event exchange can lower it
                        // below that. Windows never affect correctness in
                        // this hybrid (escalation discards shard state and
                        // the master replays serially); they only pace
                        // escalation detection, so running one more
                        // sub-window per round halves the barrier traffic
                        // at the cost of at most one extra window of
                        // discarded optimistic work.
                        let la =
                            lookahead_ticks.expect("a bounded window implies a finite lookahead");
                        let end2 = limit.0.min(end.saturating_add(la));
                        if !sim.escalated() {
                            sim.run_until_or_escalate(SimTime(end2));
                            if sim.escalated() {
                                escalated.store(true, Ordering::Relaxed);
                            }
                        }
                        if end2 >= limit.0 {
                            return;
                        }
                    }
                });
            }
        });
        !escalated.load(Ordering::Relaxed)
    }
}

/// Splits domains `0..n` into up to `t` contiguous, size-balanced
/// groups. Contiguity keeps each shard's owned set a compact range —
/// and, with component-ordered plans, keeps whole subnets together.
fn contiguous_groups(num_domains: u16, t: usize) -> Vec<Vec<u16>> {
    let n = num_domains as usize;
    let t = t.clamp(1, n);
    let (base, extra) = (n / t, n % t);
    let mut groups = Vec::with_capacity(t);
    let mut d = 0u16;
    for i in 0..t {
        let len = (base + usize::from(i < extra)) as u16;
        groups.push((d..d + len).collect());
        d += len;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{DriverId, DriverLogic};
    use crate::fault::{install_faults_at, FaultAction, FaultPlan};
    use nodesel_topology::units::MBPS;
    use nodesel_topology::{NodeId, Topology};

    /// Deterministic churn confined to one node set: periodic compute
    /// jobs and intra-set transfers.
    #[derive(Clone)]
    struct Pulse {
        nodes: Vec<NodeId>,
        k: u64,
    }

    impl DriverLogic for Pulse {
        fn fire(&mut self, sim: &mut Sim, me: DriverId) {
            self.k += 1;
            let a = self.nodes[(self.k as usize) % self.nodes.len()];
            let b = self.nodes[(self.k as usize * 7 + 3) % self.nodes.len()];
            sim.start_compute_detached(a, 0.3 + (self.k % 5) as f64 * 0.1);
            if a != b {
                sim.start_transfer_detached(a, b, 2.0 * MBPS * (1 + self.k % 7) as f64);
            }
            sim.schedule_driver_in(0.07 + (self.k % 11) as f64 * 0.013, me);
        }
    }

    /// Fires once at its scheduled time: a transfer that may cross the
    /// partition (the escalation trigger for the replay tests).
    #[derive(Clone)]
    struct CrossShot {
        src: NodeId,
        dst: NodeId,
        fired: bool,
    }

    impl DriverLogic for CrossShot {
        fn fire(&mut self, sim: &mut Sim, _me: DriverId) {
            if !self.fired {
                self.fired = true;
                sim.start_transfer_detached(self.src, self.dst, 1e9);
            }
        }
    }

    /// `k` disconnected 3-host star subnets; optionally trunked in a
    /// chain with the given latency (connecting all subnets).
    fn federation(k: usize, trunk_latency: Option<f64>) -> (Topology, Vec<Vec<NodeId>>) {
        let mut topo = Topology::new();
        let mut subnets = Vec::new();
        let mut hubs = Vec::new();
        for s in 0..k {
            let hub = topo.add_network_node(format!("s{s}-hub"));
            let mut hosts = Vec::new();
            for h in 0..3 {
                let n = topo.add_compute_node(format!("s{s}-h{h}"), 1.0);
                topo.add_link(hub, n, 100.0 * MBPS);
                hosts.push(n);
            }
            hubs.push(hub);
            subnets.push(hosts);
        }
        if let Some(lat) = trunk_latency {
            for w in hubs.windows(2) {
                topo.add_link_full(w[0], w[1], 50.0 * MBPS, 50.0 * MBPS, lat);
            }
        }
        (topo, subnets)
    }

    fn install_load(sim: &mut Sim, subnets: &[Vec<NodeId>]) {
        for (s, hosts) in subnets.iter().enumerate() {
            let d = sim.install_driver_at(
                hosts[0],
                Pulse {
                    nodes: hosts.clone(),
                    k: s as u64 * 1000,
                },
            );
            sim.schedule_driver_in(0.0, d);
            install_faults_at(
                sim,
                hosts[0],
                &FaultPlan {
                    scheduled: vec![
                        (20.0, FaultAction::CrashNode(hosts[2])),
                        (31.0, FaultAction::RebootNode(hosts[2])),
                    ],
                    ..FaultPlan::default()
                },
            );
        }
    }

    fn run_serial(
        topo: &Topology,
        subnets: &[Vec<NodeId>],
        plan: &ShardPlan,
        horizon: f64,
    ) -> (SimTime, SimStats, Vec<TraceEvent>) {
        let mut sim = Sim::new(topo.clone());
        sim.set_partition(plan.node_domain());
        sim.enable_trace(usize::MAX);
        install_load(&mut sim, subnets);
        sim.run_until(SimTime::from_secs_f64(horizon));
        let (trace, dropped) = sim.take_trace();
        assert_eq!(dropped, 0);
        (sim.now(), sim.stats(), trace)
    }

    #[test]
    fn parallel_matches_serial_across_thread_counts() {
        let (topo, subnets) = federation(4, None);
        let plan = ShardPlan::components(&topo);
        assert_eq!(plan.num_domains(), 4);
        let serial = run_serial(&topo, &subnets, &plan, 60.0);
        assert!(serial.1.events > 1000, "churn barely ran");

        for threads in [2, 3, 4, 8] {
            let mut sim = Sim::new(topo.clone());
            sim.set_partition(plan.node_domain());
            sim.enable_trace(usize::MAX);
            install_load(&mut sim, &subnets);
            let mut par = ParallelSim::new(sim, &plan, threads);
            assert!(par.is_parallel(), "threads={threads}");
            // Split the horizon to exercise repeated window phases.
            par.run_until(SimTime::from_secs(25));
            par.run_for(35.0);
            assert!(par.is_parallel(), "disconnected subnets escalated");
            let trace = par.take_trace();
            assert_eq!(par.now(), serial.0, "threads={threads}");
            assert_eq!(par.stats(), serial.1, "threads={threads}");
            assert_eq!(trace.0, serial.2, "threads={threads}");
            assert_eq!(trace.1, 0);
        }
    }

    #[test]
    fn trunked_federation_runs_windowed_and_matches_serial() {
        // Connected subnets with a real boundary: finite lookahead, so
        // the run proceeds in conservative windows — and with purely
        // domain-local load it must still match the serial run exactly.
        let (topo, subnets) = federation(3, Some(2e-3));
        let domains: Vec<u16> = (0..topo.node_count()).map(|i| (i / 4) as u16).collect();
        let plan = ShardPlan::from_assignment(&topo, &domains);
        assert_eq!(plan.boundary_links().len(), 2);
        assert_eq!(plan.lookahead_secs(), Some(2e-3));
        let serial = run_serial(&topo, &subnets, &plan, 40.0);

        let mut sim = Sim::new(topo.clone());
        sim.set_partition(plan.node_domain());
        sim.enable_trace(usize::MAX);
        install_load(&mut sim, &subnets);
        let mut par = ParallelSim::new(sim, &plan, 3);
        par.run_until(SimTime::from_secs(40));
        assert!(par.is_parallel(), "domain-local load must not escalate");
        let trace = par.take_trace();
        assert_eq!((par.now(), par.stats(), trace.0), serial);
    }

    #[test]
    fn degenerate_plans_fall_back_silently() {
        let (topo, subnets) = federation(2, None);
        let plan = ShardPlan::components(&topo);

        // One worker thread.
        let mut sim = Sim::new(topo.clone());
        sim.set_partition(plan.node_domain());
        install_load(&mut sim, &subnets);
        let par = ParallelSim::new(sim, &plan, 1);
        assert!(!par.is_parallel());
        assert_eq!(par.fallback(), Some("single thread"));

        // One domain.
        let single = ShardPlan::single(&topo);
        let mut sim = Sim::new(topo.clone());
        install_load(&mut sim, &subnets);
        let mut par = ParallelSim::new(sim, &single, 8);
        assert!(!par.is_parallel());
        assert_eq!(par.fallback(), Some("single domain"));
        par.run_until(SimTime::from_secs(30));
        assert!(par.stats().events > 100);
    }

    #[test]
    fn zero_lookahead_is_rejected_not_deadlocked() {
        // A zero-latency trunk makes conservative windows zero-width;
        // the engine must refuse and run serially, not hang.
        let (topo, subnets) = federation(2, Some(0.0));
        let domains: Vec<u16> = (0..topo.node_count()).map(|i| (i / 4) as u16).collect();
        let plan = ShardPlan::from_assignment(&topo, &domains);
        assert!(plan.zero_lookahead());

        let serial = run_serial(&topo, &subnets, &plan, 30.0);
        let mut sim = Sim::new(topo.clone());
        sim.set_partition(plan.node_domain());
        sim.enable_trace(usize::MAX);
        install_load(&mut sim, &subnets);
        let mut par = ParallelSim::new(sim, &plan, 4);
        assert!(!par.is_parallel());
        assert_eq!(par.fallback(), Some("zero lookahead"));
        par.run_until(SimTime::from_secs(30));
        let trace = par.take_trace();
        assert_eq!((par.now(), par.stats(), trace.0), serial);
    }

    #[test]
    fn escalation_replays_serially_and_stays_serial() {
        let (topo, subnets) = federation(2, Some(2e-3));
        let domains: Vec<u16> = (0..topo.node_count()).map(|i| (i / 4) as u16).collect();
        let plan = ShardPlan::from_assignment(&topo, &domains);

        let build = || {
            let mut sim = Sim::new(topo.clone());
            sim.set_partition(plan.node_domain());
            sim.enable_trace(usize::MAX);
            install_load(&mut sim, &subnets);
            // At t=5 a transfer crosses the cut: under the parallel
            // engine this trips escalation mid-run.
            let d = sim.install_driver_at(
                subnets[0][1],
                CrossShot {
                    src: subnets[0][1],
                    dst: subnets[1][1],
                    fired: false,
                },
            );
            sim.schedule_driver_in(5.0, d);
            sim
        };

        let mut serial = build();
        serial.run_until(SimTime::from_secs(40));
        let expect = (serial.now(), serial.stats(), serial.take_trace().0);

        let mut par = ParallelSim::new(build(), &plan, 2);
        assert!(par.is_parallel());
        par.run_until(SimTime::from_secs(40));
        assert!(!par.is_parallel(), "escalation must force serial replay");
        assert_eq!(par.fallback(), Some("escalated"));
        let trace = par.take_trace();
        assert_eq!((par.now(), par.stats(), trace.0), expect);

        // into_sim returns a plain simulator that can keep running.
        let mut sim = par.into_sim();
        sim.run_for(10.0);
        assert!(sim.stats().events > expect.1.events);
    }

    #[test]
    fn into_sim_replays_sharded_state_exactly() {
        let (topo, subnets) = federation(2, None);
        let plan = ShardPlan::components(&topo);
        let serial = run_serial(&topo, &subnets, &plan, 30.0);

        let mut sim = Sim::new(topo.clone());
        sim.set_partition(plan.node_domain());
        sim.enable_trace(usize::MAX);
        install_load(&mut sim, &subnets);
        let mut par = ParallelSim::new(sim, &plan, 2);
        par.run_until(SimTime::from_secs(30));
        assert!(par.is_parallel());
        let mut sim = par.into_sim();
        let (trace, _) = sim.take_trace();
        assert_eq!((sim.now(), sim.stats(), trace), serial);
    }

    #[test]
    fn groups_are_contiguous_and_balanced() {
        assert_eq!(contiguous_groups(1, 8), vec![vec![0]]);
        assert_eq!(contiguous_groups(4, 2), vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(
            contiguous_groups(5, 3),
            vec![vec![0, 1], vec![2, 3], vec![4]]
        );
        let g = contiguous_groups(32, 8);
        assert_eq!(g.len(), 8);
        assert!(g.iter().all(|grp| grp.len() == 4));
        let flat: Vec<u16> = g.into_iter().flatten().collect();
        assert_eq!(flat, (0..32).collect::<Vec<u16>>());
    }
}
