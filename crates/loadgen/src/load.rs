//! Background compute-load generator (paper §4.2).
//!
//! "A synthetic compute intensive job was periodically invoked on every
//! node. Processor load was generated using models developed by
//! Harchol-Balter and Downey, whose measurements indicate Poisson
//! interarrival times, with job duration determined by a combination of
//! exponential and Pareto distributions."
//!
//! Each node gets an independent Poisson arrival process; every arrival
//! starts a CPU job on that node whose demand is drawn from a mixture of an
//! exponential body and a truncated Pareto tail.

use crate::dist::{split_seed, Exponential, Pareto};
use nodesel_simnet::{DriverId, DriverLogic, Sim};
use nodesel_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Job-duration model: exponential body with probability `1 - pareto_prob`,
/// truncated Pareto tail otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobDurationModel {
    /// Probability a job is drawn from the heavy Pareto tail.
    pub pareto_prob: f64,
    /// Mean of the exponential body, in reference-CPU-seconds.
    pub exp_mean: f64,
    /// Pareto scale (minimum tail job duration), reference-CPU-seconds.
    pub pareto_scale: f64,
    /// Pareto shape `α`; Harchol-Balter & Downey observed `α ≈ 1`.
    pub pareto_shape: f64,
    /// Cap on a single job's duration (keeps the `α ≈ 1` tail integrable).
    pub max_duration: f64,
}

impl JobDurationModel {
    /// Draws one job duration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.random::<f64>() < self.pareto_prob {
            Pareto::new(self.pareto_scale, self.pareto_shape)
                .sample_truncated(rng, self.max_duration)
        } else {
            Exponential::with_mean(self.exp_mean)
                .sample(rng)
                .min(self.max_duration)
        }
    }

    /// Expected duration (numerically exact for the truncated mixture).
    pub fn mean(&self) -> f64 {
        let m = self.exp_mean;
        let cap = self.max_duration;
        // E[min(Exp(mean m), cap)] = m (1 - e^{-cap/m}).
        let exp_mean = m * (1.0 - (-cap / m).exp());
        // Truncated Pareto(α, s) mean of min(X, cap):
        // for α != 1: s·α/(α-1) − (s^α)·cap^{1-α}/(α-1); for α = 1:
        // s (1 + ln(cap/s)).
        let s = self.pareto_scale;
        let a = self.pareto_shape;
        let pareto_mean = if (a - 1.0).abs() < 1e-9 {
            s * (1.0 + (cap / s).ln())
        } else {
            s * a / (a - 1.0) - s.powf(a) * cap.powf(1.0 - a) / (a - 1.0)
        };
        self.pareto_prob * pareto_mean + (1.0 - self.pareto_prob) * exp_mean
    }
}

/// Configuration of the per-node background load process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Poisson arrival rate of background jobs per node, jobs/second.
    pub arrival_rate: f64,
    /// Job CPU-demand model.
    pub duration: JobDurationModel,
}

impl LoadConfig {
    /// The parameters used for the Table 1 experiments: a cluster "used
    /// primarily for data and compute intensive computations", i.e. heavier
    /// than an interactive workstation pool. The offered load per node
    /// (arrival rate × mean duration) is the long-run average load each
    /// node carries.
    /// The offered load `ρ ≈ 0.35` makes each node an M/G/1-PS queue whose
    /// run queue is empty ~65% of the time but bursts to several jobs —
    /// mild on average, yet the *maximum* over a 4–5 node barrier set is
    /// usually ≥ 1 extra job, which is exactly the regime in which Table 1
    /// was measured (random placement slows loosely-synchronous codes by
    /// 2–3× while adaptive master–slave codes degrade gently).
    /// Durations are long (minutes, with a Pareto tail up to an hour), as
    /// in the Harchol-Balter data for compute-intensive jobs: load
    /// *persists*, so a node that is busy at selection time tends to stay
    /// busy for much of an application run — the property that makes
    /// load-aware selection pay off for long applications.
    pub fn paper_defaults() -> Self {
        LoadConfig {
            arrival_rate: 1.0 / 450.0,
            duration: JobDurationModel {
                pareto_prob: 0.45,
                exp_mean: 30.0,
                pareto_scale: 60.0,
                pareto_shape: 1.0,
                max_duration: 3600.0,
            },
        }
    }

    /// Offered load per node: `ρ = arrival_rate × mean CPU demand`, the
    /// long-run fraction of the processor consumed by background jobs.
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate * self.duration.mean()
    }

    /// Long-run average run-queue length (and thus load average) each node
    /// settles at. Each node is an M/G/1 processor-sharing queue, whose
    /// mean number in system depends only on the offered load:
    /// `E[N] = ρ / (1 - ρ)`. Returns infinity for ρ ≥ 1 (unstable).
    pub fn expected_load_avg(&self) -> f64 {
        let rho = self.offered_load();
        if rho >= 1.0 {
            f64::INFINITY
        } else {
            rho / (1.0 - rho)
        }
    }
}

/// Per-node Poisson arrival process, installed as a cloneable
/// [`DriverLogic`] so its state (RNG, counters) lives inside the
/// simulator and survives [`Sim::fork`] bit-exactly.
#[derive(Debug, Clone)]
struct LoadDriver {
    node: NodeId,
    config: LoadConfig,
    rng: StdRng,
    enabled: bool,
    jobs_started: u64,
}

impl DriverLogic for LoadDriver {
    fn fire(&mut self, sim: &mut Sim, me: DriverId) {
        if !self.enabled {
            return;
        }
        let work = self.config.duration.sample(&mut self.rng);
        self.jobs_started += 1;
        sim.start_compute_detached(self.node, work);
        let gap = Exponential::new(self.config.arrival_rate).sample(&mut self.rng);
        sim.schedule_driver_in(gap, me);
    }
}

/// Handle to an installed generator: the ids of its per-node drivers.
/// State lives inside the [`Sim`], so every accessor takes the simulator
/// — and because driver ids are stable across [`Sim::fork`], one handle
/// works against the original *and* any fork.
#[derive(Debug, Clone)]
pub struct LoadHandle {
    drivers: Vec<DriverId>,
}

impl LoadHandle {
    /// Stops scheduling new arrivals (pending jobs run to completion).
    pub fn stop(&self, sim: &mut Sim) {
        for &id in &self.drivers {
            sim.driver_mut::<LoadDriver>(id).enabled = false;
        }
    }

    /// True while the generator is scheduling arrivals.
    pub fn is_running(&self, sim: &Sim) -> bool {
        self.drivers
            .iter()
            .any(|&id| sim.driver::<LoadDriver>(id).enabled)
    }

    /// Number of background jobs started so far.
    pub fn jobs_started(&self, sim: &Sim) -> u64 {
        self.drivers
            .iter()
            .map(|&id| sim.driver::<LoadDriver>(id).jobs_started)
            .sum()
    }
}

/// Installs the background-load process on every listed node.
///
/// Each node runs an independent Poisson arrival stream seeded from
/// `seed` via [`split_seed`], so adding or removing one node never
/// perturbs another node's sequence. Jobs are started *detached* and the
/// generators are data-driven, so a warmed-up simulator remains forkable
/// ([`Sim::can_fork`]).
pub fn install_load(sim: &mut Sim, nodes: &[NodeId], config: LoadConfig, seed: u64) -> LoadHandle {
    install_load_impl(sim, nodes, config, seed, false)
}

/// Like [`install_load`], but homes each node's generator at that node
/// (see [`Sim::install_driver_at`]), so on a partitioned simulator every
/// generator is domain-local and the parallel engine can run it inside
/// its shard. On an unpartitioned simulator this is bit-identical to
/// [`install_load`].
pub fn install_load_at(
    sim: &mut Sim,
    nodes: &[NodeId],
    config: LoadConfig,
    seed: u64,
) -> LoadHandle {
    install_load_impl(sim, nodes, config, seed, true)
}

fn install_load_impl(
    sim: &mut Sim,
    nodes: &[NodeId],
    config: LoadConfig,
    seed: u64,
    homed: bool,
) -> LoadHandle {
    let mut drivers = Vec::with_capacity(nodes.len());
    for (i, &node) in nodes.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(split_seed(seed, i as u64));
        let gap = Exponential::new(config.arrival_rate).sample(&mut rng);
        let driver = LoadDriver {
            node,
            config,
            rng,
            enabled: true,
            jobs_started: 0,
        };
        let id = if homed {
            sim.install_driver_at(node, driver)
        } else {
            sim.install_driver(driver)
        };
        sim.schedule_driver_in(gap, id);
        drivers.push(id);
    }
    LoadHandle { drivers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_simnet::SimTime;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    #[test]
    fn duration_model_mean_matches_samples() {
        let m = LoadConfig::paper_defaults().duration;
        let mut rng = StdRng::seed_from_u64(1);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| m.sample(&mut rng)).sum::<f64>() / n as f64;
        let expected = m.mean();
        assert!(
            (mean - expected).abs() / expected < 0.03,
            "sampled {mean}, analytic {expected}"
        );
    }

    #[test]
    fn generator_produces_expected_load_level() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let cfg = LoadConfig::paper_defaults();
        install_load(&mut sim, &ids, cfg, 7);
        // Warm up past several job lifetimes and damping constants.
        sim.run_until(SimTime::from_secs(3_000));
        let expected = cfg.expected_load_avg();
        let mean_load: f64 = ids.iter().map(|&n| sim.load_avg(n)).sum::<f64>() / ids.len() as f64;
        // One stochastic run of a heavy-tailed PS queue: allow a wide band
        // around the analytic steady state.
        assert!(
            mean_load > expected * 0.3 && mean_load < expected * 3.0,
            "mean load {mean_load}, expected {expected}"
        );
    }

    #[test]
    fn nodes_get_independent_streams() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        install_load(&mut sim, &ids, LoadConfig::paper_defaults(), 7);
        sim.run_until(SimTime::from_secs(2_000));
        let a = sim.load_avg(ids[0]);
        let b = sim.load_avg(ids[1]);
        // Independent streams virtually never coincide exactly.
        assert_ne!(a, b);
    }

    #[test]
    fn stop_halts_new_arrivals() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = install_load(&mut sim, &ids, LoadConfig::paper_defaults(), 3);
        sim.run_until(SimTime::from_secs(500));
        h.stop(&mut sim);
        let started = h.jobs_started(&sim);
        assert!(started > 0);
        sim.run_until(SimTime::from_secs(1_500));
        assert_eq!(h.jobs_started(&sim), started);
        assert!(!h.is_running(&sim));
    }

    #[test]
    fn generator_keeps_sim_forkable_and_forks_agree() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = install_load(&mut sim, &ids, LoadConfig::paper_defaults(), 11);
        sim.run_until(SimTime::from_secs(2_000));
        assert!(sim.can_fork(), "load generator left a closure pending");
        let mut fork = sim.fork();
        assert_eq!(h.jobs_started(&fork), h.jobs_started(&sim));
        fork.run_until(SimTime::from_secs(4_000));
        sim.run_until(SimTime::from_secs(4_000));
        assert_eq!(h.jobs_started(&fork), h.jobs_started(&sim));
        assert_eq!(fork.stats(), sim.stats());
        for &n in &ids {
            assert_eq!(fork.load_avg(n).to_bits(), sim.load_avg(n).to_bits());
        }
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = |seed| {
            let (topo, ids) = star(3, 100.0 * MBPS);
            let mut sim = Sim::new(topo);
            let h = install_load(&mut sim, &ids, LoadConfig::paper_defaults(), seed);
            sim.run_until(SimTime::from_secs(1_000));
            (h.jobs_started(&sim), sim.stats().completed_tasks)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
