//! Regenerates Figure 1: the Remos logical-topology graph of a simple
//! network, with live flow queries demonstrating the two API levels.

use nodesel_remos::{CollectorConfig, Estimator, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::dot::to_dot;
use nodesel_topology::testbeds::figure1;
use nodesel_topology::units::MBPS;

fn main() {
    let f = figure1();
    let hosts = f.hosts.clone();
    let mut sim = Sim::new(f.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    // Some activity so the snapshot is non-trivial: a cross-switch stream
    // and one busy host.
    sim.start_transfer(hosts[0], hosts[2], 1e15, |_| {});
    sim.start_compute(hosts[3], 1e9, |_| {});
    sim.run_for(120.0);

    let topo = remos.snapshot(&sim).to_topology();
    println!("=== Figure 1: Remos logical topology (DOT) ===");
    println!("{}", to_dot(&topo, &[]));

    println!("=== Flow queries (available bandwidth) ===");
    let pairs = [
        (hosts[0], hosts[1]),
        (hosts[0], hosts[2]),
        (hosts[1], hosts[3]),
    ];
    for info in remos.flow_query(&sim, &pairs, Estimator::Latest).unwrap() {
        println!(
            "{} -> {}: {:.1} Mbps available over {} hops, {:.2} ms latency",
            topo.node(info.src).name(),
            topo.node(info.dst).name(),
            info.available_bw / MBPS,
            info.hops,
            info.latency * 1e3,
        );
    }
    println!("=== Host queries ===");
    for h in remos.host_query(&sim, &hosts, Estimator::Latest).unwrap() {
        println!(
            "{}: loadavg {:.2}, cpu {:.2}",
            topo.node(h.node).name(),
            h.load_avg,
            h.cpu
        );
    }
}
