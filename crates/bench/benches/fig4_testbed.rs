//! Regenerates **Figure 4** (the CMU testbed with automatically selected
//! nodes avoiding an m-16 → m-18 traffic stream) and benchmarks the
//! end-to-end scenario: measurement, selection and verification.

use criterion::{criterion_group, criterion_main, Criterion};
use nodesel_core::{balanced, Constraints, GreedyPolicy, Weights};
use nodesel_experiments::run_fig4_scenario;
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let outcome = run_fig4_scenario();
    eprintln!("\n=== Figure 4: selection avoiding the m-16 -> m-18 stream ===");
    eprintln!("selected (bold in the figure): {:?}", outcome.selected);
    eprintln!("routes avoid the stream: {}", outcome.avoids_stream);

    let mut group = c.benchmark_group("fig4");
    group.sample_size(20);
    group.bench_function("full_scenario", |b| {
        b.iter(|| black_box(run_fig4_scenario()))
    });

    // Selection alone, on the measured snapshot (the part that would run
    // inside a scheduler).
    let tb = cmu_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    sim.start_transfer(tb.m(16), tb.m(18), 1e15, |_| {});
    sim.run_for(60.0);
    let snapshot = remos.snapshot(&sim).to_topology();
    group.bench_function("selection_on_testbed", |b| {
        b.iter(|| {
            black_box(
                balanced(
                    &snapshot,
                    4,
                    Weights::EQUAL,
                    &Constraints::none(),
                    None,
                    GreedyPolicy::Sweep,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
