//! The `nodesel` command-line tool. All logic lives in `nodesel_cli`;
//! this binary only handles process I/O.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match nodesel_cli::run(&args) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
