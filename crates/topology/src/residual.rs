//! Residual capacity: a ledger of admitted placements and the
//! [`NetMetrics`] view that subtracts them from a snapshot.
//!
//! Every selection algorithm in `nodesel-core` scores *measured* load
//! and traffic, which lags reality: a job admitted a moment ago has not
//! yet shown up in any Remos sample, so two concurrent admissions
//! happily pick the same "best" nodes and trunk links and then starve
//! each other. A [`LedgerState`] records the resource footprints
//! ([`ResourceClaim`]) of every admitted-but-not-yet-measured placement;
//! a [`ResidualView`] over `(NetSnapshot, LedgerState)` implements
//! [`NetMetrics`] by *adding* the claimed load and traffic onto the raw
//! measurements, so `effective_cpu` and `available` shrink by exactly
//! the admitted demand. Because the core algorithms are generic over
//! `NetMetrics` (the `*_in` entry points), they become contention-aware
//! without touching their inner loops.
//!
//! # Bit-exactness contract
//!
//! Two invariants make the view safe to thread through the bit-identical
//! answer machinery of the placement service:
//!
//! * **An empty ledger is invisible.** With no claims (or only
//!   zero-magnitude claims — zero amounts are never stored), every
//!   [`ResidualView`] metric returns the raw snapshot value *untouched*:
//!   pass-through, never `raw + 0.0`, so the bits are identical by
//!   construction. Proptests in `nodesel-service` and `nodesel-core`
//!   guard this.
//! * **View and materialization agree.** [`LedgerState::to_delta`]
//!   emits `raw + extra` for exactly the entities a claim touches, so
//!   `snapshot.apply(&ledger.to_delta(&snapshot))` is a real
//!   [`NetSnapshot`] whose metrics are bit-identical to the
//!   [`ResidualView`]'s (the same two `f64` operands are added either
//!   way). Consumers that need a concrete snapshot — the `Supervisor`,
//!   the service's worker pool — materialize; everything else can
//!   borrow the view.
//!
//! Aggregated extras are recomputed from scratch in ascending
//! job-id order on every insert *and* removal: floating-point addition
//! is not associative, so incremental subtraction on release would leave
//! different bits than never having admitted the job at all.

use crate::maxmin::dir_slot;
use crate::route::RouteTable;
use crate::snapshot::{NetDelta, NetMetrics, NetSnapshot};
use crate::{Direction, EdgeId, NodeId, Topology};
use std::collections::BTreeMap;

/// The resource footprint one admitted placement claims, expressed as
/// *additions* to the measured annotations: extra load average per
/// placed node and extra consumed bandwidth per directed link on the
/// placement's internal routes.
///
/// Zero-magnitude entries are never stored (they would perturb nothing,
/// but `raw + 0.0` is not always the bitwise identity — it rewrites
/// `-0.0` to `0.0`), so a zero-demand claim is exactly an empty claim.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResourceClaim {
    /// Extra load average per node: `(node, added_load)`, sorted by
    /// node, deduplicated, every amount finite and positive.
    pub nodes: Vec<(NodeId, f64)>,
    /// Extra consumed bandwidth per directed link:
    /// `(edge, direction, added_bits_per_s)`, sorted by `(edge,
    /// direction)`, deduplicated, every amount finite and positive.
    pub links: Vec<(EdgeId, Direction, f64)>,
}

impl ResourceClaim {
    /// True when the claim touches nothing.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty()
    }

    /// The claim of placing one task on each of `nodes` that exchange
    /// traffic pairwise: every placed node gains `cpu_load` load
    /// average, and for every unordered pair the route between them
    /// carries `pair_bandwidth` bits/s *in each direction* (the apps
    /// modeled here are symmetric exchanges; a one-way stream simply
    /// over-claims the quiet direction).
    ///
    /// Pairs with no route (a disconnected federation without trunks)
    /// contribute no link claim — their traffic never crosses the
    /// network, so there is nothing to reserve. Duplicate nodes
    /// accumulate their load.
    pub fn for_placement(
        structure: &Topology,
        nodes: &[NodeId],
        cpu_load: f64,
        pair_bandwidth: f64,
    ) -> ResourceClaim {
        let mut claim = ResourceClaim::default();
        if cpu_load > 0.0 {
            let mut loads: BTreeMap<NodeId, f64> = BTreeMap::new();
            for &n in nodes {
                *loads.entry(n).or_insert(0.0) += cpu_load;
            }
            claim.nodes = loads.into_iter().collect();
        }
        if pair_bandwidth > 0.0 && nodes.len() >= 2 {
            let table = RouteTable::build_for_sources(structure, nodes.iter().copied());
            let mut used: BTreeMap<usize, f64> = BTreeMap::new();
            for (i, &a) in nodes.iter().enumerate() {
                for &b in nodes.iter().skip(i + 1) {
                    if a == b {
                        continue;
                    }
                    let Ok(path) = table.resolve(structure, a, b) else {
                        continue;
                    };
                    for &(e, dir) in &path.hops {
                        *used.entry(dir_slot(e, dir)).or_insert(0.0) += pair_bandwidth;
                        *used.entry(dir_slot(e, dir.reverse())).or_insert(0.0) += pair_bandwidth;
                    }
                }
            }
            claim.links = used
                .into_iter()
                .map(|(slot, amount)| (EdgeId::from_index(slot / 2), slot_dir(slot), amount))
                .collect();
        }
        claim
    }

    /// A [`NetDelta`] whose entries mark exactly the entities this claim
    /// touches (values are the claim amounts, *not* absolute
    /// annotations). Useful purely for footprint-intersection tests —
    /// applying it to a snapshot is meaningless.
    pub fn touched_delta(&self) -> NetDelta {
        NetDelta {
            nodes: self.nodes.clone(),
            links: self.links.clone(),
            ..NetDelta::default()
        }
    }
}

/// The direction encoded in a [`dir_slot`] index.
fn slot_dir(slot: usize) -> Direction {
    if slot.is_multiple_of(2) {
        Direction::AtoB
    } else {
        Direction::BtoA
    }
}

/// The claims of every admitted placement, keyed by an opaque job id,
/// with the per-entity aggregates a [`ResidualView`] reads.
///
/// Insertion order never matters: aggregates are recomputed from
/// scratch in ascending job-id order on every change, so the state
/// after `insert(a); insert(b); remove(a)` is bit-identical to a fresh
/// `insert(b)` — the property that lets a release restore the oblivious
/// answer bits exactly.
#[derive(Debug, Clone, Default)]
pub struct LedgerState {
    claims: BTreeMap<u64, ResourceClaim>,
    /// Aggregate extra load per node index.
    extra_load: BTreeMap<usize, f64>,
    /// Aggregate extra consumed bandwidth per directed-link slot.
    extra_used: BTreeMap<usize, f64>,
}

impl LedgerState {
    /// A ledger with no claims.
    pub fn new() -> LedgerState {
        LedgerState::default()
    }

    /// Number of claims held.
    pub fn len(&self) -> usize {
        self.claims.len()
    }

    /// True when no claim is held.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }

    /// True when the aggregates touch nothing (no claims, or only empty
    /// claims): every residual metric is then raw pass-through.
    pub fn is_invisible(&self) -> bool {
        self.extra_load.is_empty() && self.extra_used.is_empty()
    }

    /// Records `claim` under `id`, replacing any previous claim with the
    /// same id.
    pub fn insert(&mut self, id: u64, claim: ResourceClaim) {
        self.claims.insert(id, claim);
        self.recompute();
    }

    /// Removes the claim of `id`, returning it if present.
    pub fn remove(&mut self, id: u64) -> Option<ResourceClaim> {
        let removed = self.claims.remove(&id);
        if removed.is_some() {
            self.recompute();
        }
        removed
    }

    /// The claim recorded under `id`.
    pub fn claim(&self, id: u64) -> Option<&ResourceClaim> {
        self.claims.get(&id)
    }

    /// Recomputes the aggregates from scratch in ascending job-id order.
    fn recompute(&mut self) {
        self.extra_load.clear();
        self.extra_used.clear();
        for claim in self.claims.values() {
            for &(n, amount) in &claim.nodes {
                if amount != 0.0 {
                    *self.extra_load.entry(n.index()).or_insert(0.0) += amount;
                }
            }
            for &(e, dir, amount) in &claim.links {
                if amount != 0.0 {
                    *self.extra_used.entry(dir_slot(e, dir)).or_insert(0.0) += amount;
                }
            }
        }
        // An aggregate that cancels to exactly 0.0 cannot occur with
        // positive amounts, but guard pass-through anyway: a stored 0.0
        // would turn a raw `-0.0` into `+0.0` on read.
        self.extra_load.retain(|_, v| *v != 0.0);
        self.extra_used.retain(|_, v| *v != 0.0);
    }

    /// Extra load claimed on node `n`, if any.
    pub fn extra_load(&self, n: NodeId) -> Option<f64> {
        self.extra_load.get(&n.index()).copied()
    }

    /// Extra consumed bandwidth claimed on `(e, dir)`, if any.
    pub fn extra_used(&self, e: EdgeId, dir: Direction) -> Option<f64> {
        self.extra_used.get(&dir_slot(e, dir)).copied()
    }

    /// The delta that materializes this ledger onto `snap`: for every
    /// touched entity, the raw annotation plus the aggregate extra —
    /// the same `raw + extra` a [`ResidualView`] computes, so
    /// `snap.apply(&delta)` is bit-identical to the view. An invisible
    /// ledger yields an empty delta (and `apply` then shares every
    /// array).
    pub fn to_delta(&self, snap: &NetSnapshot) -> NetDelta {
        self.delta_excluding(snap, None)
    }

    /// [`LedgerState::to_delta`] with the claim of `excluded` left out —
    /// the view a supervisor re-selecting job `excluded` must solve on,
    /// so the job's own reservation does not repel its re-placement
    /// (double-counting). Bit-identical to removing the claim and
    /// calling `to_delta`, without mutating the ledger.
    pub fn to_delta_excluding(&self, snap: &NetSnapshot, excluded: u64) -> NetDelta {
        self.delta_excluding(snap, Some(excluded))
    }

    fn delta_excluding(&self, snap: &NetSnapshot, excluded: Option<u64>) -> NetDelta {
        let (extra_load, extra_used) = match excluded {
            Some(id) if self.claims.contains_key(&id) => {
                let mut load: BTreeMap<usize, f64> = BTreeMap::new();
                let mut used: BTreeMap<usize, f64> = BTreeMap::new();
                for (&jid, claim) in &self.claims {
                    if jid == id {
                        continue;
                    }
                    for &(n, amount) in &claim.nodes {
                        if amount != 0.0 {
                            *load.entry(n.index()).or_insert(0.0) += amount;
                        }
                    }
                    for &(e, dir, amount) in &claim.links {
                        if amount != 0.0 {
                            *used.entry(dir_slot(e, dir)).or_insert(0.0) += amount;
                        }
                    }
                }
                load.retain(|_, v| *v != 0.0);
                used.retain(|_, v| *v != 0.0);
                (load, used)
            }
            _ => (self.extra_load.clone(), self.extra_used.clone()),
        };
        let mut delta = NetDelta::default();
        for (&idx, &extra) in &extra_load {
            let n = NodeId::from_index(idx);
            delta.nodes.push((n, snap.load_avg(n) + extra));
        }
        for (&slot, &extra) in &extra_used {
            let e = EdgeId::from_index(slot / 2);
            let dir = slot_dir(slot);
            delta.links.push((e, dir, snap.used(e, dir) + extra));
        }
        delta
    }

    /// Re-derives every claim against a new structure after a
    /// structural change: each claim is rebuilt from `nodes` and the
    /// recorded demand by the caller. Claims whose nodes fell out of
    /// the new structure's id range are dropped to empty (the placement
    /// references entities that no longer exist; the owner should
    /// re-select or release).
    pub fn rebind<F>(&mut self, structure: &Topology, mut rebuild: F)
    where
        F: FnMut(u64) -> Option<ResourceClaim>,
    {
        let ids: Vec<u64> = self.claims.keys().copied().collect();
        for id in ids {
            let claim = rebuild(id).unwrap_or_default();
            let in_range = claim
                .nodes
                .iter()
                .all(|&(n, _)| n.index() < structure.node_count())
                && claim
                    .links
                    .iter()
                    .all(|&(e, _, _)| e.index() < structure.link_count());
            self.claims.insert(
                id,
                if in_range {
                    claim
                } else {
                    ResourceClaim::default()
                },
            );
        }
        self.recompute();
    }
}

/// [`NetMetrics`] over a raw snapshot with a ledger's claims added on:
/// the *residual* network the next admission should be solved against.
///
/// Raw metrics pass through untouched wherever no claim reaches —
/// the arithmetic `raw + extra` happens only for claimed entities — so
/// an invisible ledger makes the view bit-identical to the snapshot.
/// Health (availability, staleness) always passes through: a claim
/// reserves capacity, it says nothing about liveness.
#[derive(Debug, Clone, Copy)]
pub struct ResidualView<'a> {
    snap: &'a NetSnapshot,
    ledger: &'a LedgerState,
}

impl<'a> ResidualView<'a> {
    /// The residual view of `snap` under `ledger`.
    pub fn new(snap: &'a NetSnapshot, ledger: &'a LedgerState) -> ResidualView<'a> {
        ResidualView { snap, ledger }
    }

    /// The underlying raw snapshot.
    pub fn snapshot(&self) -> &'a NetSnapshot {
        self.snap
    }

    /// The ledger whose claims this view subtracts.
    pub fn ledger(&self) -> &'a LedgerState {
        self.ledger
    }
}

impl NetMetrics for ResidualView<'_> {
    fn structure(&self) -> &Topology {
        self.snap.structure()
    }

    fn load_avg(&self, n: NodeId) -> f64 {
        let raw = self.snap.load_avg(n);
        match self.ledger.extra_load(n) {
            Some(extra) => raw + extra,
            None => raw,
        }
    }

    fn used(&self, e: EdgeId, dir: Direction) -> f64 {
        let raw = self.snap.used(e, dir);
        match self.ledger.extra_used(e, dir) {
            Some(extra) => raw + extra,
            None => raw,
        }
    }

    fn node_available(&self, n: NodeId) -> bool {
        self.snap.node_available(n)
    }

    fn link_available(&self, e: EdgeId) -> bool {
        self.snap.link_available(e)
    }

    fn node_staleness(&self, n: NodeId) -> u32 {
        self.snap.node_staleness(n)
    }

    fn link_staleness(&self, e: EdgeId) -> u32 {
        self.snap.link_staleness(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{dumbbell, star};
    use crate::units::MBPS;
    use std::sync::Arc;

    fn snap_star(n: usize) -> (NetSnapshot, Vec<NodeId>) {
        let (mut topo, ids) = star(n, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 1.5);
        let e = topo.edge_ids().next().unwrap();
        topo.set_link_used(e, Direction::AtoB, 30.0 * MBPS);
        (NetSnapshot::capture(Arc::new(topo)), ids)
    }

    #[test]
    fn empty_ledger_is_bitwise_invisible() {
        let (snap, _) = snap_star(4);
        let ledger = LedgerState::new();
        assert!(ledger.is_invisible());
        let view = ResidualView::new(&snap, &ledger);
        for i in 0..snap.structure().node_count() {
            let n = NodeId::from_index(i);
            assert_eq!(view.load_avg(n).to_bits(), snap.load_avg(n).to_bits());
            assert_eq!(
                view.effective_cpu(n).to_bits(),
                snap.effective_cpu(n).to_bits()
            );
        }
        for e in snap.structure().edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                assert_eq!(view.used(e, dir).to_bits(), snap.used(e, dir).to_bits());
                assert_eq!(
                    view.available(e, dir).to_bits(),
                    snap.available(e, dir).to_bits()
                );
            }
            assert_eq!(view.bw(e).to_bits(), snap.bw(e).to_bits());
        }
        // Materialization of an invisible ledger is an empty delta.
        assert!(ledger.to_delta(&snap).is_empty());
    }

    #[test]
    fn zero_demand_claim_is_empty() {
        let (snap, ids) = snap_star(4);
        let claim = ResourceClaim::for_placement(snap.structure(), &ids[..2], 0.0, 0.0);
        assert!(claim.is_empty());
        let mut ledger = LedgerState::new();
        ledger.insert(1, claim);
        assert_eq!(ledger.len(), 1);
        assert!(ledger.is_invisible());
    }

    #[test]
    fn claim_adds_load_and_route_traffic() {
        let (topo, ids) = dumbbell(2, 100.0 * MBPS, 50.0 * MBPS);
        let snap = NetSnapshot::capture(Arc::new(topo));
        // One node per side: the route crosses the backbone.
        let placed = [ids[0], ids[2]];
        let claim = ResourceClaim::for_placement(snap.structure(), &placed, 1.0, 5.0 * MBPS);
        assert_eq!(claim.nodes.len(), 2);
        assert!(!claim.links.is_empty());
        let mut ledger = LedgerState::new();
        ledger.insert(7, claim.clone());
        let view = ResidualView::new(&snap, &ledger);
        // Claimed node: load rises by exactly the claim; CPU drops.
        assert_eq!(
            view.load_avg(placed[0]).to_bits(),
            (snap.load_avg(placed[0]) + 1.0).to_bits()
        );
        assert!(view.effective_cpu(placed[0]) < snap.effective_cpu(placed[0]));
        // Unclaimed node: untouched bits.
        assert_eq!(
            view.load_avg(ids[1]).to_bits(),
            snap.load_avg(ids[1]).to_bits()
        );
        // Every claimed link direction loses available bandwidth.
        for &(e, dir, amount) in &claim.links {
            assert_eq!(
                view.used(e, dir).to_bits(),
                (snap.used(e, dir) + amount).to_bits()
            );
            assert!(view.available(e, dir) <= snap.available(e, dir));
        }
    }

    #[test]
    fn view_matches_materialized_snapshot_bitwise() {
        let (snap, ids) = snap_star(5);
        let mut ledger = LedgerState::new();
        ledger.insert(
            1,
            ResourceClaim::for_placement(snap.structure(), &ids[..3], 1.0, 2.0 * MBPS),
        );
        ledger.insert(
            2,
            ResourceClaim::for_placement(snap.structure(), &ids[2..4], 2.0, 1.0 * MBPS),
        );
        let view = ResidualView::new(&snap, &ledger);
        let materialized = snap.apply(&ledger.to_delta(&snap));
        for i in 0..snap.structure().node_count() {
            let n = NodeId::from_index(i);
            assert_eq!(
                view.load_avg(n).to_bits(),
                materialized.load_avg(n).to_bits()
            );
            assert_eq!(
                view.effective_cpu(n).to_bits(),
                materialized.effective_cpu(n).to_bits()
            );
        }
        for e in snap.structure().edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                assert_eq!(
                    view.used(e, dir).to_bits(),
                    materialized.used(e, dir).to_bits()
                );
                assert_eq!(
                    view.available(e, dir).to_bits(),
                    materialized.available(e, dir).to_bits()
                );
            }
        }
    }

    #[test]
    fn release_restores_exact_bits() {
        let (snap, ids) = snap_star(5);
        let claim_a = ResourceClaim::for_placement(snap.structure(), &ids[..2], 1.0, 3.0 * MBPS);
        let claim_b = ResourceClaim::for_placement(snap.structure(), &ids[1..4], 2.0, 1.0 * MBPS);
        // Reference: only b was ever admitted.
        let mut only_b = LedgerState::new();
        only_b.insert(2, claim_b.clone());
        // Admit a then b, release a: aggregates must match `only_b`.
        let mut ledger = LedgerState::new();
        ledger.insert(1, claim_a);
        ledger.insert(2, claim_b);
        ledger.remove(1);
        let snap_ref = snap.apply(&only_b.to_delta(&snap));
        let snap_led = snap.apply(&ledger.to_delta(&snap));
        assert_eq!(snap_ref.load_values(), snap_led.load_values());
        assert_eq!(snap_ref.used_values(), snap_led.used_values());
        // Release everything: invisible again.
        ledger.remove(2);
        assert!(ledger.is_invisible());
        assert!(ledger.to_delta(&snap).is_empty());
    }

    #[test]
    fn excluding_matches_removal() {
        let (snap, ids) = snap_star(5);
        let claim_a = ResourceClaim::for_placement(snap.structure(), &ids[..2], 1.0, 3.0 * MBPS);
        let claim_b = ResourceClaim::for_placement(snap.structure(), &ids[2..4], 2.0, 0.0);
        let mut ledger = LedgerState::new();
        ledger.insert(1, claim_a.clone());
        ledger.insert(2, claim_b.clone());
        let excluded = ledger.to_delta_excluding(&snap, 1);
        let mut removed = ledger.clone();
        removed.remove(1);
        assert_eq!(excluded, removed.to_delta(&snap));
        // Excluding an unknown id is the plain delta.
        assert_eq!(ledger.to_delta_excluding(&snap, 99), ledger.to_delta(&snap));
    }

    #[test]
    fn touched_delta_marks_the_claimed_set() {
        let (snap, ids) = snap_star(4);
        let claim = ResourceClaim::for_placement(snap.structure(), &ids[..2], 1.0, 2.0 * MBPS);
        let delta = claim.touched_delta();
        assert_eq!(delta.nodes.len(), claim.nodes.len());
        assert_eq!(delta.links.len(), claim.links.len());
        assert!(!delta.has_health_changes());
    }

    #[test]
    fn disconnected_pairs_claim_no_links() {
        // Two disjoint stars: a cross-placement cannot route.
        let mut topo = Topology::new();
        let h1 = topo.add_network_node("h1");
        let h2 = topo.add_network_node("h2");
        let a = topo.add_compute_node("a", 1.0);
        let b = topo.add_compute_node("b", 1.0);
        topo.add_link(h1, a, 100.0 * MBPS);
        topo.add_link(h2, b, 100.0 * MBPS);
        let claim = ResourceClaim::for_placement(&topo, &[a, b], 1.0, 5.0 * MBPS);
        assert_eq!(claim.nodes.len(), 2);
        assert!(claim.links.is_empty());
    }
}
