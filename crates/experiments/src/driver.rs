//! Single-trial experiment driver.
//!
//! One *trial* reproduces one execution from the paper's methodology
//! (§4.3): bring the testbed to a steady state under the configured
//! background load/traffic, select nodes (randomly or automatically from
//! Remos measurements), run the application, and record its turnaround
//! time.

use nodesel_apps::AppModel;
use nodesel_core::{balanced, random_selection, Constraints, GreedyPolicy, Weights};
use nodesel_loadgen::{install_load, install_traffic, LoadConfig, TrafficConfig};
use nodesel_remos::{CollectorConfig, Estimator, Remos};
use nodesel_simnet::{FlowEngine, Sim};
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which background generators run during a trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Condition {
    /// Unloaded testbed (the paper's reference column).
    None,
    /// Compute-load generator only.
    Load,
    /// Network-traffic generator only.
    Traffic,
    /// Both generators.
    Both,
}

impl Condition {
    /// All four conditions in table order.
    pub const ALL: [Condition; 4] = [
        Condition::None,
        Condition::Load,
        Condition::Traffic,
        Condition::Both,
    ];

    /// Column label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Condition::None => "unloaded",
            Condition::Load => "load",
            Condition::Traffic => "traffic",
            Condition::Both => "load+traffic",
        }
    }

    fn has_load(self) -> bool {
        matches!(self, Condition::Load | Condition::Both)
    }

    fn has_traffic(self) -> bool {
        matches!(self, Condition::Traffic | Condition::Both)
    }
}

/// How nodes are picked for the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Uniformly random compute nodes (the paper's baseline, which it
    /// argues also stands in for static selection on this testbed).
    Random,
    /// The paper's framework: balanced selection on the Remos-measured
    /// logical topology.
    Automatic,
    /// Balanced selection on the simulator's ground truth (no measurement
    /// staleness) — an upper bound used by ablations.
    Oracle,
    /// Balanced selection on the unloaded topology (structure only).
    Static,
}

impl Strategy {
    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Random => "random",
            Strategy::Automatic => "automatic",
            Strategy::Oracle => "oracle",
            Strategy::Static => "static",
        }
    }
}

/// Tunables shared by every trial.
#[derive(Debug, Clone, Copy)]
pub struct TrialConfig {
    /// Background-load model (used when the condition includes load).
    pub load: LoadConfig,
    /// Background-traffic model (used when the condition includes traffic).
    pub traffic: TrafficConfig,
    /// Remos collector settings.
    pub collector: CollectorConfig,
    /// Estimator the automatic strategy queries with.
    pub estimator: Estimator,
    /// Seconds of warm-up before selection + launch.
    pub warmup: f64,
    /// Flow engine the simulator runs on. Both engines produce
    /// bit-identical trials; `Reference` exists for oracle checks and
    /// benchmarking.
    pub engine: FlowEngine,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            load: LoadConfig::paper_defaults(),
            traffic: TrafficConfig::paper_defaults(),
            collector: CollectorConfig::default(),
            estimator: Estimator::Latest,
            warmup: 1800.0,
            engine: FlowEngine::default(),
        }
    }
}

/// Result of one trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialResult {
    /// Application turnaround time, seconds.
    pub elapsed: f64,
    /// The node names that were selected.
    pub nodes: Vec<String>,
}

/// Runs one trial of `app` on `m` nodes of the CMU testbed.
///
/// `seed` drives every random choice (generators and random selection);
/// equal seeds give bit-identical trials.
pub fn run_trial(
    app: &AppModel,
    m: usize,
    strategy: Strategy,
    condition: Condition,
    config: &TrialConfig,
    seed: u64,
) -> TrialResult {
    let tb = cmu_testbed();
    let machines = tb.machines.clone();
    let mut sim = Sim::with_flow_engine(tb.topo, config.engine);
    let remos = Remos::install(&mut sim, config.collector);
    if condition.has_load() {
        install_load(&mut sim, &machines, config.load, seed ^ 0x10AD);
    }
    if condition.has_traffic() {
        install_traffic(&mut sim, &machines, config.traffic, seed ^ 0x7AFF1C);
    }
    sim.run_for(config.warmup);

    let nodes: Vec<NodeId> = match strategy {
        Strategy::Random => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5E1EC7);
            random_selection(sim.topology(), m, &mut rng)
                .expect("testbed has enough nodes")
                .nodes
        }
        Strategy::Automatic => {
            let snapshot = remos.logical_topology(config.estimator);
            balanced(
                &snapshot,
                m,
                Weights::EQUAL,
                &Constraints::none(),
                None,
                GreedyPolicy::Sweep,
            )
            .expect("testbed has enough nodes")
            .nodes
        }
        Strategy::Oracle => {
            let snapshot = sim.oracle_snapshot();
            balanced(
                &snapshot,
                m,
                Weights::EQUAL,
                &Constraints::none(),
                None,
                GreedyPolicy::Sweep,
            )
            .expect("testbed has enough nodes")
            .nodes
        }
        Strategy::Static => {
            nodesel_core::static_selection(sim.topology(), m)
                .expect("testbed has enough nodes")
                .nodes
        }
    };

    let handle = app.launch(&mut sim, &nodes);
    while !handle.is_finished() {
        assert!(sim.step(), "simulation drained before the app finished");
    }
    let names = {
        let topo = sim.topology();
        nodes
            .iter()
            .map(|&n| topo.node(n).name().to_string())
            .collect()
    };
    TrialResult {
        elapsed: handle.elapsed().expect("finished"),
        nodes: names,
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (Bessel-corrected); 0 for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Half-width of the ~95% confidence interval for the mean
/// (`1.96 σ / √n`); the paper's "statistically relevant results" caveat,
/// quantified.
pub fn ci95_half_width(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    1.96 * std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Runs `repetitions` independent trials in parallel (one OS thread per
/// chunk) and returns the per-trial turnaround times in seed order.
pub fn run_trials(
    app: &AppModel,
    m: usize,
    strategy: Strategy,
    condition: Condition,
    config: &TrialConfig,
    base_seed: u64,
    repetitions: usize,
) -> Vec<f64> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(repetitions.max(1));
    let mut results = vec![0.0f64; repetitions];
    let chunk = repetitions.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, out) in results.chunks_mut(chunk).enumerate() {
            let app = app.clone();
            let config = *config;
            scope.spawn(move || {
                for (i, slot) in out.iter_mut().enumerate() {
                    let rep = t * chunk + i;
                    let seed = base_seed.wrapping_add(1_000_003 * rep as u64);
                    *slot = run_trial(&app, m, strategy, condition, &config, seed).elapsed;
                }
            });
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_apps::fft::fft_program;

    fn tiny_app() -> AppModel {
        AppModel::Phased(fft_program(2))
    }

    #[test]
    fn unloaded_trial_is_deterministic() {
        let cfg = TrialConfig {
            warmup: 10.0,
            ..TrialConfig::default()
        };
        let a = run_trial(&tiny_app(), 4, Strategy::Random, Condition::None, &cfg, 1);
        let b = run_trial(&tiny_app(), 4, Strategy::Random, Condition::None, &cfg, 1);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.nodes.len(), 4);
    }

    #[test]
    fn load_slows_random_placement() {
        let cfg = TrialConfig {
            warmup: 300.0,
            ..TrialConfig::default()
        };
        let app = AppModel::Phased(fft_program(12));
        let unloaded = run_trials(&app, 4, Strategy::Random, Condition::None, &cfg, 3, 5);
        let loaded = run_trials(&app, 4, Strategy::Random, Condition::Load, &cfg, 3, 5);
        assert!(
            mean(&loaded) > mean(&unloaded) * 1.05,
            "load {loaded:?} vs unloaded {unloaded:?}"
        );
    }

    #[test]
    fn automatic_beats_random_under_load_on_average() {
        let cfg = TrialConfig {
            warmup: 300.0,
            ..TrialConfig::default()
        };
        let app = tiny_app();
        let random = run_trials(&app, 4, Strategy::Random, Condition::Load, &cfg, 11, 6);
        let auto = run_trials(&app, 4, Strategy::Automatic, Condition::Load, &cfg, 11, 6);
        assert!(
            mean(&auto) < mean(&random),
            "auto {:?} vs random {:?}",
            auto,
            random
        );
    }

    #[test]
    fn run_trials_is_seed_stable() {
        let cfg = TrialConfig {
            warmup: 20.0,
            ..TrialConfig::default()
        };
        let app = tiny_app();
        let a = run_trials(&app, 4, Strategy::Random, Condition::None, &cfg, 7, 4);
        let b = run_trials(&app, 4, Strategy::Random, Condition::None, &cfg, 7, 4);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn std_dev_and_ci() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(ci95_half_width(&[5.0]), 0.0);
        // Known sample: {2, 4, 4, 4, 5, 5, 7, 9} has sample std ≈ 2.138.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.138).abs() < 1e-3);
        let ci = ci95_half_width(&xs);
        assert!((ci - 1.96 * 2.138 / 8f64.sqrt()).abs() < 1e-3);
    }
}
