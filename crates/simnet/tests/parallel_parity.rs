//! The parallel engine's bit-exactness contract, as an integration
//! matrix: federated 2/8/32-subnet topologies × fault plans × thread
//! counts 1/2/4/8, disconnected and trunked, with every observable —
//! final clock, statistics, and the full event trace (task and flow
//! completions included) — byte-identical to the single-threaded
//! oracle. Plus the degenerate single-domain plan and the
//! zero-lookahead rejection path.

mod common;

use common::{federation, parallel_run, serial_run, subnet_domains};
use nodesel_simnet::FlowEngine;
use nodesel_topology::ShardPlan;
use proptest::prelude::*;

const SIZES: [usize; 3] = [2, 8, 32];
const THREADS: [usize; 4] = [1, 2, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Disconnected federations (every subnet an island, unbounded
    /// windows): all thread counts reproduce the serial run exactly,
    /// with and without fault injection.
    #[test]
    fn disconnected_federations_match_serial(
        seed in 0u64..10_000,
        size_sel in 0usize..3,
        fault_sel in 0u8..2,
    ) {
        let (size, faults) = (SIZES[size_sel], fault_sel == 1);
        let (topo, subnets) = federation(size, None);
        let plan = ShardPlan::components(&topo);
        prop_assert_eq!(plan.num_domains() as usize, size);
        let serial = serial_run(
            &topo, &plan, &subnets, faults, seed, 16.0, FlowEngine::Incremental,
        );
        prop_assert!(serial.1.events > 200, "churn barely ran");
        for threads in THREADS {
            let (got, fallback) = parallel_run(
                &topo, &plan, &subnets, faults, seed, 16.0, threads,
                FlowEngine::Incremental,
            );
            let expect_fallback = if threads == 1 { Some("single thread") } else { None };
            prop_assert_eq!(fallback, expect_fallback, "threads={}", threads);
            prop_assert_eq!(&got, &serial, "diverged at threads={}", threads);
        }
    }

    /// Trunked (connected) federations: a real boundary, finite
    /// lookahead, conservative windows — still bit-identical as long
    /// as the load stays domain-local.
    #[test]
    fn trunked_federations_match_serial(
        seed in 0u64..10_000,
        size_sel in 0usize..2,
        fault_sel in 0u8..2,
    ) {
        let (size, faults) = (SIZES[size_sel], fault_sel == 1);
        let (topo, subnets) = federation(size, Some(1.5e-3));
        let plan = ShardPlan::from_assignment(&topo, &subnet_domains(&topo));
        prop_assert_eq!(plan.boundary_links().len(), size - 1);
        prop_assert_eq!(plan.lookahead_secs(), Some(1.5e-3));
        let serial = serial_run(
            &topo, &plan, &subnets, faults, seed, 12.0, FlowEngine::Incremental,
        );
        for threads in THREADS {
            let (got, fallback) = parallel_run(
                &topo, &plan, &subnets, faults, seed, 12.0, threads,
                FlowEngine::Incremental,
            );
            prop_assert!(
                fallback.is_none() || threads == 1,
                "domain-local load escalated at threads={}", threads
            );
            prop_assert_eq!(&got, &serial, "diverged at threads={}", threads);
        }
    }
}

/// The headline bench scenario — 32 trunked subnets at 8 threads —
/// is bit-identical too (deterministic, one shot: the windowed run
/// crosses thousands of barrier rounds).
#[test]
fn trunked_32_subnet_federation_matches_serial_at_8_threads() {
    let (topo, subnets) = federation(32, Some(1.5e-3));
    let plan = ShardPlan::from_assignment(&topo, &subnet_domains(&topo));
    let serial = serial_run(
        &topo,
        &plan,
        &subnets,
        true,
        7,
        8.0,
        FlowEngine::Incremental,
    );
    let (got, fallback) = parallel_run(
        &topo,
        &plan,
        &subnets,
        true,
        7,
        8.0,
        8,
        FlowEngine::Incremental,
    );
    assert_eq!(fallback, None);
    assert_eq!(got, serial);
}

/// A connected topology under component analysis is one domain: the
/// engine falls back to a plain serial run behind the same API.
#[test]
fn single_domain_plan_degenerates_to_serial() {
    let (topo, subnets) = federation(3, Some(2e-3));
    let plan = ShardPlan::components(&topo);
    assert!(plan.is_single());
    let serial = serial_run(
        &topo,
        &plan,
        &subnets,
        true,
        5,
        14.0,
        FlowEngine::Incremental,
    );
    let (got, fallback) = parallel_run(
        &topo,
        &plan,
        &subnets,
        true,
        5,
        14.0,
        8,
        FlowEngine::Incremental,
    );
    assert_eq!(fallback, Some("single domain"));
    assert_eq!(got, serial);
}

/// Zero-latency boundary links make conservative windows zero-width;
/// the engine must refuse the partition and run serially — matching
/// the oracle, not deadlocking or diverging.
#[test]
fn zero_lookahead_is_rejected_not_deadlocked() {
    let (topo, subnets) = federation(4, Some(0.0));
    let plan = ShardPlan::from_assignment(&topo, &subnet_domains(&topo));
    assert!(plan.zero_lookahead());
    let serial = serial_run(
        &topo,
        &plan,
        &subnets,
        true,
        9,
        14.0,
        FlowEngine::Incremental,
    );
    let (got, fallback) = parallel_run(
        &topo,
        &plan,
        &subnets,
        true,
        9,
        14.0,
        4,
        FlowEngine::Incremental,
    );
    assert_eq!(fallback, Some("zero lookahead"));
    assert_eq!(got, serial);
}
