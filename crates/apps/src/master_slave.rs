//! Master–slave (self-scheduling) programs.
//!
//! MRI "uses a master-slave protocol for compute intensive regions that
//! automatically adapts if a compute or communication step slows down"
//! (paper §4.3). Work units are handed to slaves on demand: a slow slave
//! simply processes fewer units, so background load degrades throughput
//! gracefully instead of stalling a barrier. This is why Table 1 shows MRI
//! hurt far less by load and traffic than the loosely-synchronous codes.

use crate::handle::AppHandle;
use nodesel_simnet::{Sim, SimTime};
use nodesel_topology::NodeId;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A master–slave program description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterSlaveProgram {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Number of independent work units (e.g. images to reconstruct).
    pub units: usize,
    /// Reference-CPU-seconds a slave spends per unit.
    pub unit_work: f64,
    /// Bits shipped master → slave per unit (the input slice).
    pub input_bits: f64,
    /// Bits shipped slave → master per unit (the result).
    pub output_bits: f64,
    /// Reference-CPU-seconds the master spends folding in each result.
    pub master_work: f64,
}

impl MasterSlaveProgram {
    /// Total slave-side compute demand, reference-CPU-seconds.
    pub fn total_work(&self) -> f64 {
        self.units as f64 * self.unit_work
    }

    /// Total bits moved over the network.
    pub fn total_bits(&self) -> f64 {
        self.units as f64 * (self.input_bits + self.output_bits)
    }
}

struct Queue {
    program: MasterSlaveProgram,
    master: NodeId,
    unassigned: usize,
    completed: usize,
    finished: Rc<Cell<Option<SimTime>>>,
}

/// Launches a master–slave program: `nodes[0]` is the master, the rest are
/// slaves. Panics with fewer than two nodes.
pub fn launch_master_slave(
    sim: &mut Sim,
    program: MasterSlaveProgram,
    nodes: &[NodeId],
) -> AppHandle {
    assert!(
        nodes.len() >= 2,
        "master-slave needs a master and at least one slave"
    );
    for &n in nodes {
        assert!(
            sim.topology().node(n).is_compute(),
            "programs run on compute nodes"
        );
    }
    let (handle, finished) = AppHandle::new(sim.now());
    if program.units == 0 {
        finished.set(Some(sim.now()));
        return handle;
    }
    let queue = Rc::new(RefCell::new(Queue {
        program,
        master: nodes[0],
        unassigned: program.units,
        completed: 0,
        finished,
    }));
    for &slave in &nodes[1..] {
        assign_next(sim, queue.clone(), slave);
    }
    handle
}

/// Tries to hand the next unit to `slave`; drives the per-unit pipeline
/// input-transfer → slave-compute → output-transfer → master-compute.
fn assign_next(sim: &mut Sim, queue: Rc<RefCell<Queue>>, slave: NodeId) {
    let job = {
        let mut q = queue.borrow_mut();
        if q.unassigned == 0 {
            None
        } else {
            q.unassigned -= 1;
            Some((q.program, q.master))
        }
    };
    let Some((program, master)) = job else {
        return;
    };
    let q2 = queue.clone();
    sim.start_transfer(master, slave, program.input_bits, move |sim| {
        let q3 = q2.clone();
        sim.start_compute(slave, program.unit_work, move |sim| {
            let q4 = q3.clone();
            sim.start_transfer(slave, master, program.output_bits, move |sim| {
                let q5 = q4.clone();
                sim.start_compute(master, program.master_work, move |sim| {
                    let all_done = {
                        let mut q = q5.borrow_mut();
                        q.completed += 1;
                        q.completed == q.program.units
                    };
                    if all_done {
                        q5.borrow().finished.set(Some(sim.now()));
                    } else {
                        assign_next(sim, q5, slave);
                    }
                });
            });
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    fn prog(units: usize, unit_work: f64) -> MasterSlaveProgram {
        MasterSlaveProgram {
            name: "test",
            units,
            unit_work,
            input_bits: 1.0 * MBPS, // 10 ms on a clean 100 Mbps path
            output_bits: 1.0 * MBPS,
            master_work: 0.0,
        }
    }

    #[test]
    fn work_divides_across_slaves() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        // 30 units × 1 s over 3 slaves ≈ 10 s + small transfer overhead.
        let h = launch_master_slave(&mut sim, prog(30, 1.0), &ids);
        sim.run();
        let t = h.elapsed().unwrap();
        assert!((10.0..11.0).contains(&t), "elapsed {t}");
    }

    #[test]
    fn adapts_to_a_slow_slave() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        // Slave ids[1] is heavily loaded (9 competitors => 10% speed).
        for _ in 0..9 {
            sim.start_compute(ids[1], 1e9, |_| {});
        }
        let h = launch_master_slave(&mut sim, prog(30, 1.0), &ids);
        sim.run_for(60.0);
        let t = h.elapsed().unwrap();
        // Perfect adaptation would be 30 units / (1 + 1 + 0.1) ≈ 14.3 s;
        // a barrier-style split (10 units each, slow node at 10%) would
        // take ~100 s. Self-scheduling must land near the former.
        assert!(t < 25.0, "elapsed {t}");
        assert!(t > 10.0, "elapsed {t}");
    }

    #[test]
    fn single_slave_serializes() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = launch_master_slave(&mut sim, prog(5, 2.0), &ids);
        sim.run();
        let t = h.elapsed().unwrap();
        // 5 × (0.01 + 2.0 + 0.01) = 10.1, plus scheduling epsilon.
        assert!((t - 10.1).abs() < 0.01, "elapsed {t}");
    }

    #[test]
    fn master_work_serializes_at_master() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let p = MasterSlaveProgram {
            master_work: 0.5,
            ..prog(10, 0.1)
        };
        let h = launch_master_slave(&mut sim, p, &ids);
        sim.run();
        // Master folds 10 × 0.5 = 5 s of work; it is the bottleneck.
        let t = h.elapsed().unwrap();
        assert!(t >= 5.0, "elapsed {t}");
    }

    #[test]
    fn zero_units_finish_instantly() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = launch_master_slave(&mut sim, prog(0, 1.0), &ids);
        sim.run();
        assert_eq!(h.elapsed(), Some(0.0));
    }

    #[test]
    fn totals() {
        let p = prog(10, 2.0);
        assert_eq!(p.total_work(), 20.0);
        assert_eq!(p.total_bits(), 20.0 * MBPS);
    }

    #[test]
    #[should_panic(expected = "at least one slave")]
    fn rejects_single_node() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        launch_master_slave(&mut sim, prog(1, 1.0), &ids[..1]);
    }
}
