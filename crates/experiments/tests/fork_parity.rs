//! Fork parity proptests: continuing a trial from a forked warm state
//! must be bit-identical to running it straight through with the same
//! seed — same turnaround bits, same selected nodes — for arbitrary
//! seeds, every strategy, every background condition, and both flow
//! engines. This is the trial-level face of the fork tests in
//! `nodesel-simnet`, and the property the shared-warmup batch runners
//! stand on.

use nodesel_apps::AppModel;
use nodesel_experiments::{
    run_trial, warm_trial, Condition, Strategy as Placement, Testbed, TrialConfig,
};
use nodesel_loadgen::{install_load, LoadConfig};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::{install_faults, FaultAction, FaultPlan, Flap, FlapTarget, FlowEngine, Sim};
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::{Direction, EdgeId, NetMetrics, NodeId};
use proptest::prelude::*;

fn config(engine: FlowEngine) -> TrialConfig {
    TrialConfig {
        // Short warm-up keeps each case affordable; parity must hold at
        // any boundary, so the length is irrelevant to the property.
        warmup: 150.0,
        engine,
        ..TrialConfig::default()
    }
}

fn conditions() -> impl Strategy<Value = Condition> {
    prop_oneof![
        Just(Condition::None),
        Just(Condition::Load),
        Just(Condition::Traffic),
        Just(Condition::Both),
    ]
}

fn placements() -> impl Strategy<Value = Placement> {
    prop_oneof![
        Just(Placement::Random),
        Just(Placement::Automatic),
        Just(Placement::Oracle),
        Just(Placement::Static),
    ]
}

fn engines() -> impl Strategy<Value = FlowEngine> {
    prop_oneof![Just(FlowEngine::Incremental), Just(FlowEngine::Reference)]
}

/// Decodes raw proptest words into a `FaultPlan` over the CMU testbed:
/// scheduled actions in `[0, 900)` s plus stochastic flaps with short
/// dwells. Times are tenths of a second; indices wrap over the edge and
/// machine lists so every draw is valid.
fn decode_fault_plan(
    raw_sched: &[(u32, u8, u16)],
    raw_flaps: &[(u8, u16, u32, u32)],
    seed: u64,
) -> FaultPlan {
    let tb = cmu_testbed();
    let edges: Vec<EdgeId> = tb.topo.edge_ids().collect();
    let machines: Vec<NodeId> = tb.machines.clone();
    let pick_e = |i: u16| edges[i as usize % edges.len()];
    let pick_m = |i: u16| machines[i as usize % machines.len()];
    let group = |i: u16| -> Vec<NodeId> {
        let len = 1 + i as usize % 4;
        (0..len)
            .map(|k| machines[(i as usize + k) % machines.len()])
            .collect()
    };
    let scheduled = raw_sched
        .iter()
        .map(|&(t, kind, idx)| {
            let action = match kind % 6 {
                0 => FaultAction::LinkDown(pick_e(idx)),
                1 => FaultAction::LinkUp(pick_e(idx)),
                2 => FaultAction::CrashNode(pick_m(idx)),
                3 => FaultAction::RebootNode(pick_m(idx)),
                4 => FaultAction::Partition(group(idx)),
                _ => FaultAction::Heal(group(idx)),
            };
            (t as f64 * 0.1, action)
        })
        .collect();
    let flaps = raw_flaps
        .iter()
        .map(|&(kind, idx, up, down)| Flap {
            target: if kind % 2 == 0 {
                FlapTarget::Link(pick_e(idx))
            } else {
                FlapTarget::Node(pick_m(idx))
            },
            mean_up: 1.0 + up as f64 * 0.01,
            mean_down: 0.5 + down as f64 * 0.01,
        })
        .collect();
    FaultPlan {
        scheduled,
        flaps,
        seed,
    }
}

/// Every observable a fault touches must agree bitwise between two sims:
/// clock, ground-truth load and utilization, up/down state, and the
/// degraded collector view (values, availability, staleness).
fn assert_same_world(
    a: &Sim,
    b: &Sim,
    ra: &Remos,
    rb: &Remos,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(
        a.now().as_secs_f64().to_bits(),
        b.now().as_secs_f64().to_bits(),
        "clocks diverged"
    );
    let (oa, ob) = (a.oracle_snapshot(), b.oracle_snapshot());
    let (sa, sb) = (ra.snapshot(a), rb.snapshot(b));
    for n in oa.node_ids() {
        prop_assert_eq!(
            oa.node(n).load_avg().to_bits(),
            ob.node(n).load_avg().to_bits()
        );
        prop_assert_eq!(a.node_is_up(n), b.node_is_up(n), "node {:?} up-state", n);
        prop_assert_eq!(sa.load_avg(n).to_bits(), sb.load_avg(n).to_bits());
        prop_assert_eq!(sa.node_available(n), sb.node_available(n));
        prop_assert_eq!(sa.node_staleness(n), sb.node_staleness(n));
    }
    for e in oa.edge_ids() {
        prop_assert_eq!(a.link_is_up(e), b.link_is_up(e), "link {:?} up-state", e);
        prop_assert_eq!(sa.link_available(e), sb.link_available(e));
        prop_assert_eq!(sa.link_staleness(e), sb.link_staleness(e));
        for dir in [Direction::AtoB, Direction::BtoA] {
            prop_assert_eq!(
                oa.link(e).used(dir).to_bits(),
                ob.link(e).used(dir).to_bits()
            );
            prop_assert_eq!(sa.used(e, dir).to_bits(), sb.used(e, dir).to_bits());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// fork() at the warm-up boundary, then finish: bit-identical to a
    /// straight-through `run_trial` with the same seed.
    #[test]
    fn forked_continuation_is_bit_identical(
        seed in 0u64..1_000_000,
        app_idx in 0usize..3,
        condition in conditions(),
        placement in placements(),
        engine in engines(),
    ) {
        let testbed = Testbed::cmu();
        let suite = AppModel::paper_suite();
        let (app, m) = &suite[app_idx];
        let cfg = config(engine);

        let warm = warm_trial(&testbed, condition, &cfg, seed);
        let forked = warm.fork().finish(app, *m, placement);
        let straight = run_trial(&testbed, app, *m, placement, condition, &cfg, seed);

        prop_assert_eq!(
            forked.elapsed.to_bits(),
            straight.elapsed.to_bits(),
            "elapsed diverged: {} {:?} {:?} {:?} seed {}",
            app.name(), placement, condition, engine, seed
        );
        prop_assert_eq!(forked.nodes, straight.nodes, "selection diverged");
    }

    /// Sibling forks of one warm state are independent: two forks given
    /// different strategies each match their own straight-through run,
    /// and finishing one fork does not perturb the other.
    #[test]
    fn sibling_forks_do_not_interfere(
        seed in 0u64..1_000_000,
        app_idx in 0usize..3,
        condition in conditions(),
        engine in engines(),
    ) {
        let testbed = Testbed::cmu();
        let suite = AppModel::paper_suite();
        let (app, m) = &suite[app_idx];
        let cfg = config(engine);

        let warm = warm_trial(&testbed, condition, &cfg, seed);
        let fork_a = warm.fork();
        let fork_b = warm.fork();
        // Finish A first; B's result must be unaffected.
        let a = fork_a.finish(app, *m, Placement::Automatic);
        let b = fork_b.finish(app, *m, Placement::Random);

        let sa = run_trial(
            &testbed, app, *m, Placement::Automatic, condition, &cfg, seed,
        );
        let sb = run_trial(&testbed, app, *m, Placement::Random, condition, &cfg, seed);
        prop_assert_eq!(a.elapsed.to_bits(), sa.elapsed.to_bits());
        prop_assert_eq!(a.nodes, sa.nodes);
        prop_assert_eq!(b.elapsed.to_bits(), sb.elapsed.to_bits());
        prop_assert_eq!(b.nodes, sb.nodes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A random `FaultPlan` (scheduled actions + stochastic flaps),
    /// running alongside the background-load generators and a lossy
    /// collector, replays bit-identically across `Sim::fork`: forking at
    /// 300 s and continuing to 900 s matches a straight 900 s run in
    /// every fault-touched observable — clock, ground truth, up/down
    /// state, and the degraded collector view. The base sim, continued
    /// after its fork was taken, must match as well.
    #[test]
    fn fault_plans_replay_bit_identically_across_fork(
        seed in 0u64..1_000_000,
        raw_sched in proptest::collection::vec((0u32..9000, 0u8..6, 0u16..1024), 1..10),
        raw_flaps in proptest::collection::vec(
            (0u8..2, 0u16..1024, 0u32..3000, 0u32..3000), 0..4),
        engine in engines(),
    ) {
        let testbed = Testbed::cmu();
        let plan = decode_fault_plan(&raw_sched, &raw_flaps, seed ^ 0xFA);
        let build = || {
            let mut sim = testbed.sim(engine);
            let remos = Remos::install(
                &mut sim,
                CollectorConfig {
                    loss: 0.1,
                    seed,
                    ..CollectorConfig::default()
                },
            );
            install_load(
                &mut sim,
                &testbed.machines,
                LoadConfig::paper_defaults(),
                seed ^ 0x10AD,
            );
            install_faults(&mut sim, &plan);
            (sim, remos)
        };

        let (mut straight, remos_s) = build();
        straight.run_for(900.0);

        let (mut base, remos_b) = build();
        base.run_for(300.0);
        let mut forked = base.fork();
        forked.run_for(600.0);
        base.run_for(600.0);

        assert_same_world(&straight, &forked, &remos_s, &remos_b)?;
        assert_same_world(&straight, &base, &remos_s, &remos_b)?;
    }
}
