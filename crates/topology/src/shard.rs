//! Domain partitions for the sharded simulator.
//!
//! A [`ShardPlan`] assigns every node of a [`Topology`] to a *domain* —
//! the unit the parallel event engine runs on its own worker with its own
//! event queue. Conservative synchronization between domains needs a
//! *lookahead*: no event scheduled in one domain can affect another
//! sooner than the minimum latency of the links crossing the partition,
//! so workers may safely advance in lock-step windows of that width.
//!
//! The natural partition for the federated topologies this repo benches
//! is by connected component ([`ShardPlan::components`]): disconnected
//! subnets exchange no events at all, the boundary is empty and the
//! window width is unbounded. Arbitrary cuts come from
//! [`ShardPlan::from_assignment`], which extracts the boundary links and
//! derives the lookahead from their latencies — including the degenerate
//! zero-latency boundary the engine must refuse to parallelize.

use crate::{EdgeId, NodeId, Topology, UnionFind};

/// A partition of a topology's nodes into event-engine domains.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Domain of each node, indexed by [`NodeId::index`].
    node_domain: Vec<u16>,
    /// Number of domains (all values in `node_domain` are below this).
    num_domains: u16,
    /// Links whose endpoints live in different domains.
    boundary: Vec<EdgeId>,
    /// Conservative window width in seconds: the minimum one-way latency
    /// over the boundary links. `None` when the boundary is empty (fully
    /// independent domains — windows may be arbitrarily wide).
    lookahead_secs: Option<f64>,
}

impl ShardPlan {
    /// The trivial plan: every node in domain 0, no boundary.
    pub fn single(topo: &Topology) -> ShardPlan {
        ShardPlan {
            node_domain: vec![0; topo.node_count()],
            num_domains: 1,
            boundary: Vec::new(),
            lookahead_secs: None,
        }
    }

    /// One domain per connected component, numbered in order of each
    /// component's smallest node index (stable across runs). This is the
    /// embarrassingly-parallel partition: no boundary links, unbounded
    /// windows.
    pub fn components(topo: &Topology) -> ShardPlan {
        let n = topo.node_count();
        let mut uf = UnionFind::new(n);
        for e in topo.edge_ids() {
            let l = topo.link(e);
            uf.union(l.a().index(), l.b().index());
        }
        // Number components by first appearance, which is by smallest
        // member index because nodes are scanned in id order.
        let mut domain_of_root = vec![u16::MAX; n];
        let mut node_domain = vec![0u16; n];
        let mut next = 0u16;
        for (i, nd) in node_domain.iter_mut().enumerate() {
            let root = uf.find(i);
            if domain_of_root[root] == u16::MAX {
                domain_of_root[root] = next;
                next = next.checked_add(1).expect("more than 65535 domains");
            }
            *nd = domain_of_root[root];
        }
        ShardPlan {
            node_domain,
            num_domains: next.max(1),
            boundary: Vec::new(),
            lookahead_secs: None,
        }
    }

    /// A plan from an explicit node→domain assignment. Boundary links and
    /// the lookahead (minimum boundary latency) are derived from the
    /// topology. Panics if the assignment length does not match the node
    /// count or a domain id leaves a gap (domains must be `0..k`).
    pub fn from_assignment(topo: &Topology, node_domain: &[u16]) -> ShardPlan {
        assert_eq!(
            node_domain.len(),
            topo.node_count(),
            "assignment length must match node count"
        );
        let num_domains = node_domain.iter().copied().max().unwrap_or(0) + 1;
        let mut seen = vec![false; num_domains as usize];
        for &d in node_domain {
            seen[d as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "domain ids must be contiguous from 0"
        );
        let mut boundary = Vec::new();
        let mut lookahead = f64::INFINITY;
        for e in topo.edge_ids() {
            let l = topo.link(e);
            if node_domain[l.a().index()] != node_domain[l.b().index()] {
                lookahead = lookahead.min(l.latency());
                boundary.push(e);
            }
        }
        ShardPlan {
            node_domain: node_domain.to_vec(),
            num_domains,
            boundary,
            lookahead_secs: if lookahead.is_finite() {
                Some(lookahead)
            } else {
                None
            },
        }
    }

    /// Number of domains.
    pub fn num_domains(&self) -> u16 {
        self.num_domains
    }

    /// Domain of `n`.
    pub fn domain_of(&self, n: NodeId) -> u16 {
        self.node_domain[n.index()]
    }

    /// The full node→domain assignment, indexed by [`NodeId::index`].
    pub fn node_domain(&self) -> &[u16] {
        &self.node_domain
    }

    /// Links crossing the partition, in edge-id order.
    pub fn boundary_links(&self) -> &[EdgeId] {
        &self.boundary
    }

    /// Conservative window width in seconds; `None` means the domains are
    /// fully independent (empty boundary).
    pub fn lookahead_secs(&self) -> Option<f64> {
        self.lookahead_secs
    }

    /// True when there is nothing to parallelize: a single domain.
    pub fn is_single(&self) -> bool {
        self.num_domains == 1
    }

    /// True when conservative windows cannot make progress: a boundary
    /// link with zero latency. The parallel engine must fall back to
    /// serial execution rather than deadlock on zero-width windows.
    pub fn zero_lookahead(&self) -> bool {
        self.lookahead_secs.is_some_and(|l| l <= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::star;
    use crate::units::MBPS;

    fn two_subnets() -> (Topology, Vec<NodeId>) {
        let mut topo = Topology::new();
        let mut hubs = Vec::new();
        for s in 0..2 {
            let hub = topo.add_network_node(format!("s{s}-hub"));
            for h in 0..3 {
                let n = topo.add_compute_node(format!("s{s}-h{h}"), 1.0);
                topo.add_link(hub, n, 100.0 * MBPS);
            }
            hubs.push(hub);
        }
        (topo, hubs)
    }

    #[test]
    fn components_split_disconnected_subnets() {
        let (topo, _) = two_subnets();
        let plan = ShardPlan::components(&topo);
        assert_eq!(plan.num_domains(), 2);
        assert!(plan.boundary_links().is_empty());
        assert_eq!(plan.lookahead_secs(), None);
        assert!(!plan.is_single());
        // Numbering follows smallest member index: nodes 0..4 are subnet
        // 0, nodes 4..8 subnet 1.
        assert_eq!(plan.domain_of(NodeId::from_index(0)), 0);
        assert_eq!(plan.domain_of(NodeId::from_index(3)), 0);
        assert_eq!(plan.domain_of(NodeId::from_index(4)), 1);
        assert_eq!(plan.domain_of(NodeId::from_index(7)), 1);
    }

    #[test]
    fn connected_topology_is_one_component() {
        let (topo, _) = star(5, 100.0 * MBPS);
        let plan = ShardPlan::components(&topo);
        assert_eq!(plan.num_domains(), 1);
        assert!(plan.is_single());
        assert_eq!(plan, ShardPlan::single(&topo));
    }

    #[test]
    fn from_assignment_extracts_boundary_and_lookahead() {
        let (mut topo, hubs) = two_subnets();
        let trunk = topo.add_link_full(hubs[0], hubs[1], 50.0 * MBPS, 50.0 * MBPS, 2e-3);
        let plan = ShardPlan::components(&topo);
        assert_eq!(plan.num_domains(), 1, "trunk joins the components");
        let cut: Vec<u16> = (0..topo.node_count())
            .map(|i| if i < 4 { 0 } else { 1 })
            .collect();
        let plan = ShardPlan::from_assignment(&topo, &cut);
        assert_eq!(plan.num_domains(), 2);
        assert_eq!(plan.boundary_links(), &[trunk]);
        assert_eq!(plan.lookahead_secs(), Some(2e-3));
        assert!(!plan.zero_lookahead());
    }

    #[test]
    fn zero_latency_boundary_is_flagged() {
        let (mut topo, hubs) = two_subnets();
        topo.add_link(hubs[0], hubs[1], 50.0 * MBPS); // latency 0
        let cut: Vec<u16> = (0..topo.node_count())
            .map(|i| if i < 4 { 0 } else { 1 })
            .collect();
        let plan = ShardPlan::from_assignment(&topo, &cut);
        assert!(plan.zero_lookahead());
        assert_eq!(plan.lookahead_secs(), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gapped_domain_ids_rejected() {
        let (topo, _) = star(3, 100.0 * MBPS);
        let cut = vec![0, 2, 2, 2]; // domain 1 missing
        ShardPlan::from_assignment(&topo, &cut);
    }
}
