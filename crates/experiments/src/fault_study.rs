//! Fault study: node selection on a network that breaks mid-run.
//!
//! The paper's experiments assume the testbed stays up for the duration
//! of a trial. This study drops that assumption: a seeded [`FaultPlan`]
//! crashes the most attractive node shortly after launch (optionally
//! rebooting it later), and three placement regimes race a long job
//! against a deadline:
//!
//! * **random** — uniformly random nodes, never reconsidered;
//! * **automatic** — balanced selection on Remos measurements at launch,
//!   never reconsidered (the paper's framework, verbatim);
//! * **supervised** — the same automatic launch placement, watched by a
//!   [`Supervisor`]: degraded availability data from the collector
//!   triggers re-selection and the job restarts its current work unit on
//!   the advised nodes.
//!
//! The job is a sequence of checkpointed work units (short FFT runs):
//! completed units survive a failure, the unit in flight when a
//! placement node dies is lost and must be re-run. Without supervision a
//! trial whose placement contains the crashed node can only finish if
//! the fault plan eventually reboots it; supervision bounds the outage
//! at the collector's detection latency plus one re-selection.
//!
//! Reported per trial: completion, turnaround, time-to-recover (first
//! fault observed on the placement to the next completed unit), and the
//! supervisor's re-selection counters.

use crate::driver::mean;
use nodesel_apps::{fft::fft_program, AppModel};
use nodesel_core::migration::OwnUsage;
use nodesel_core::{
    random_selection, BalancedSelector, SelectionRequest, Selector, Supervisor, SupervisorPolicy,
    SupervisorVerdict,
};
use nodesel_loadgen::{install_load, LoadConfig};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::{install_faults, FaultAction, FaultPlan, Sim};
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Placement regime under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultStrategy {
    /// Random placement, never reconsidered.
    Random,
    /// Automatic (Remos + balanced) placement, never reconsidered.
    Automatic,
    /// Automatic placement under a [`Supervisor`].
    Supervised,
}

impl FaultStrategy {
    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultStrategy::Random => "random",
            FaultStrategy::Automatic => "automatic",
            FaultStrategy::Supervised => "supervised",
        }
    }
}

/// Tunables of one fault trial.
#[derive(Debug, Clone)]
pub struct FaultStudyConfig {
    /// Application size (nodes).
    pub m: usize,
    /// Checkpointed work units in the job.
    pub units: usize,
    /// FFT iterations per unit.
    pub unit_iterations: usize,
    /// Warm-up seconds before selection + launch.
    pub warmup: f64,
    /// Give-up horizon, seconds after launch.
    pub deadline: f64,
    /// Simulation slice between health inspections, seconds.
    pub tick: f64,
    /// Supervisor consultation cadence, seconds.
    pub check_period: f64,
    /// Crash the victim this long after launch, seconds.
    pub crash_after: f64,
    /// Reboot the victim this long after the crash (`None`: it stays
    /// down forever).
    pub reboot_after: Option<f64>,
    /// Background compute load (the selection pressure).
    pub load: LoadConfig,
    /// Remos collector settings.
    pub collector: CollectorConfig,
    /// Supervisor re-selection policy.
    pub policy: SupervisorPolicy,
}

impl Default for FaultStudyConfig {
    fn default() -> Self {
        FaultStudyConfig {
            m: 4,
            units: 12,
            unit_iterations: 8,
            warmup: 600.0,
            deadline: 4000.0,
            tick: 5.0,
            check_period: 30.0,
            crash_after: 30.0,
            reboot_after: None,
            load: LoadConfig::paper_defaults(),
            collector: CollectorConfig::default(),
            policy: SupervisorPolicy::default(),
        }
    }
}

/// Outcome of one fault trial.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// True when every unit finished before the deadline.
    pub completed: bool,
    /// Job turnaround (or the deadline, when incomplete), seconds.
    pub elapsed: f64,
    /// Seconds from the first fault observed on the placement to the
    /// next completed unit; `None` when no fault hit the placement or it
    /// never recovered.
    pub recovery: Option<f64>,
    /// Re-selections the supervisor advised (0 for the other regimes).
    pub reselections: u64,
    /// The subset advised because of a failure.
    pub failure_reselections: u64,
}

/// Runs one trial: warm the testbed, place, install the fault plan, and
/// race the unit loop against the deadline. Fully determined by `seed`.
///
/// The fault plan is strategy-independent: it crashes the first node of
/// the *automatic* placement for this seed (the most attractive node),
/// so the regimes face the same network history.
pub fn run_fault_trial(
    strategy: FaultStrategy,
    config: &FaultStudyConfig,
    seed: u64,
) -> FaultOutcome {
    let tb = cmu_testbed();
    let machines = tb.machines.clone();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, config.collector);
    install_load(&mut sim, &machines, config.load, seed ^ 0x10AD);
    sim.run_for(config.warmup);

    let request = SelectionRequest::balanced(config.m);
    let auto_nodes = {
        let mut selector = BalancedSelector::new();
        selector
            .select(&remos.snapshot(&sim), &request)
            .expect("testbed has enough nodes")
            .nodes
    };
    let victim = auto_nodes[0];
    let mut placement: Vec<NodeId> = match strategy {
        FaultStrategy::Random => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5E1EC7);
            random_selection(sim.topology(), config.m, &mut rng)
                .expect("testbed has enough nodes")
                .nodes
        }
        _ => auto_nodes,
    };

    let mut scheduled = vec![(config.crash_after, FaultAction::CrashNode(victim))];
    if let Some(delay) = config.reboot_after {
        scheduled.push((config.crash_after + delay, FaultAction::RebootNode(victim)));
    }
    install_faults(
        &mut sim,
        &FaultPlan {
            scheduled,
            flaps: Vec::new(),
            seed,
        },
    );

    let mut supervisor = match strategy {
        FaultStrategy::Supervised => Some(Supervisor::new(request, config.policy)),
        _ => None,
    };

    let app = AppModel::Phased(fft_program(config.unit_iterations));
    let start = sim.now();
    let mut last_check = start.as_secs_f64();
    let mut units_done = 0usize;
    let mut first_fault: Option<f64> = None;
    let mut recovery: Option<f64> = None;
    let mut completed = true;

    'units: while units_done < config.units {
        let handle = app.launch(&mut sim, &placement);
        // Set when this unit's placement was seen dead: the unit cannot
        // finish and must be relaunched once the placement is viable.
        let mut unit_dead = false;
        loop {
            if handle.is_finished() {
                units_done += 1;
                if recovery.is_none() {
                    if let Some(at) = first_fault {
                        recovery = Some(sim.now().as_secs_f64() - at);
                    }
                }
                continue 'units;
            }
            if sim.now().seconds_since(start) >= config.deadline {
                completed = false;
                break 'units;
            }
            sim.run_for(config.tick);
            // The collector driver keeps the queue alive; killed-task and
            // aborted-flow notices are drained so they don't accumulate.
            let _ = sim.take_killed_tasks();
            let _ = sim.take_aborted_flows();
            if handle.is_finished() {
                // The unit completed within this tick; account for it at
                // the loop head before inspecting health, so a fault
                // landing in the same tick is not misread as survived.
                continue;
            }
            let now = sim.now().as_secs_f64();
            let down = placement.iter().any(|&n| !sim.node_is_up(n));
            if down {
                unit_dead = true;
                first_fault.get_or_insert(now);
            }
            match &mut supervisor {
                Some(sup) => {
                    // Consult on schedule, or immediately while impaired —
                    // the supervisor fires once the *collector* has seen
                    // the fault, which is the honest detection latency.
                    if unit_dead || now - last_check >= config.check_period {
                        last_check = now;
                        let snapshot = remos.snapshot(&sim);
                        let own = OwnUsage::one_process_per_node(&placement);
                        if let Ok(check) = sup.check(now, &snapshot, &placement, &own) {
                            if matches!(check.verdict, SupervisorVerdict::Reselect { .. }) {
                                placement = check.advice.best.nodes;
                                // Abandon the stalled handle; the unit
                                // re-runs on the new placement.
                                continue 'units;
                            }
                        }
                    }
                }
                None => {
                    // Unsupervised regimes can only wait for a reboot,
                    // then re-run the lost unit on the same nodes.
                    if unit_dead && placement.iter().all(|&n| sim.node_is_up(n)) {
                        continue 'units;
                    }
                }
            }
        }
    }

    FaultOutcome {
        completed,
        elapsed: sim.now().seconds_since(start).min(config.deadline),
        recovery,
        reselections: supervisor.as_ref().map_or(0, |s| s.reselections()),
        failure_reselections: supervisor.as_ref().map_or(0, |s| s.failure_reselections()),
    }
}

/// Aggregate of one strategy over seeded repetitions.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// Strategy under test.
    pub strategy: FaultStrategy,
    /// Fraction of trials that completed before the deadline.
    pub completion_rate: f64,
    /// Mean turnaround across all trials (incomplete trials count the
    /// deadline).
    pub mean_elapsed: f64,
    /// Mean time-to-recover across trials that both saw a fault on their
    /// placement and recovered; `None` when no trial recovered.
    pub mean_recovery: Option<f64>,
    /// Trials whose placement was hit by a fault.
    pub faulted: usize,
    /// Mean re-selections per trial (supervised only).
    pub mean_reselections: f64,
    /// Trial count.
    pub trials: usize,
}

/// Runs `reps` seeded trials of each regime under the same fault plans.
pub fn run_fault_study(config: &FaultStudyConfig, base_seed: u64, reps: usize) -> Vec<FaultCell> {
    [
        FaultStrategy::Random,
        FaultStrategy::Automatic,
        FaultStrategy::Supervised,
    ]
    .into_iter()
    .map(|strategy| {
        let outcomes: Vec<FaultOutcome> = (0..reps)
            .map(|rep| {
                run_fault_trial(strategy, config, base_seed.wrapping_add(7_919 * rep as u64))
            })
            .collect();
        let recoveries: Vec<f64> = outcomes.iter().filter_map(|o| o.recovery).collect();
        FaultCell {
            strategy,
            completion_rate: outcomes.iter().filter(|o| o.completed).count() as f64 / reps as f64,
            mean_elapsed: mean(&outcomes.iter().map(|o| o.elapsed).collect::<Vec<_>>()),
            mean_recovery: (!recoveries.is_empty()).then(|| mean(&recoveries)),
            faulted: outcomes.iter().filter(|o| o.recovery.is_some()).count(),
            mean_reselections: outcomes.iter().map(|o| o.reselections as f64).sum::<f64>()
                / reps as f64,
            trials: reps,
        }
    })
    .collect()
}

/// Renders the study as an aligned text table.
pub fn render_fault_table(cells: &[FaultCell]) -> String {
    let mut out = String::new();
    out.push_str("strategy    complete   mean turnaround   mean recovery   reselections\n");
    for c in cells {
        let recovery = c
            .mean_recovery
            .map_or_else(|| "-".to_string(), |r| format!("{r:.0} s"));
        out.push_str(&format!(
            "{:<11} {:>7.0}%   {:>13.0} s   {:>13}   {:>12.1}\n",
            c.strategy.label(),
            100.0 * c.completion_rate,
            c.mean_elapsed,
            recovery,
            c.mean_reselections,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> FaultStudyConfig {
        FaultStudyConfig {
            units: 6,
            unit_iterations: 8,
            warmup: 120.0,
            deadline: 1500.0,
            crash_after: 20.0,
            ..FaultStudyConfig::default()
        }
    }

    #[test]
    fn supervised_survives_a_permanent_crash() {
        let cfg = quick_config();
        let sup = run_fault_trial(FaultStrategy::Supervised, &cfg, 3);
        assert!(sup.completed, "supervised trial missed the deadline");
        assert!(sup.failure_reselections >= 1);
        assert!(sup.recovery.is_some());
        let auto = run_fault_trial(FaultStrategy::Automatic, &cfg, 3);
        assert!(!auto.completed, "automatic has no recovery path");
        assert!((auto.elapsed - cfg.deadline).abs() < 1e-9);
    }

    #[test]
    fn reboot_lets_automatic_finish_late() {
        let cfg = FaultStudyConfig {
            reboot_after: Some(400.0),
            ..quick_config()
        };
        let auto = run_fault_trial(FaultStrategy::Automatic, &cfg, 3);
        let sup = run_fault_trial(FaultStrategy::Supervised, &cfg, 3);
        assert!(auto.completed && sup.completed);
        // Supervision re-places within the collector latency; waiting for
        // the reboot costs the unsupervised run the full outage.
        assert!(
            sup.elapsed < auto.elapsed,
            "supervised {} vs automatic {}",
            sup.elapsed,
            auto.elapsed
        );
        let (Some(rs), Some(ra)) = (sup.recovery, auto.recovery) else {
            panic!("both regimes should observe and survive the fault");
        };
        assert!(rs < ra, "supervised recovery {rs} vs automatic {ra}");
    }

    #[test]
    fn trials_are_seed_deterministic() {
        let cfg = quick_config();
        let a = run_fault_trial(FaultStrategy::Supervised, &cfg, 7);
        let b = run_fault_trial(FaultStrategy::Supervised, &cfg, 7);
        assert_eq!(a.elapsed.to_bits(), b.elapsed.to_bits());
        assert_eq!(a.reselections, b.reselections);
        assert_eq!(a.recovery.map(f64::to_bits), b.recovery.map(f64::to_bits));
    }
}
