//! SNMP-style periodic collector.
//!
//! The local-area Remos implementation "is based on SNMP processes on
//! network nodes and entails a very low overhead" (paper §2.2). The
//! collector reproduces that measurement pipeline against the simulator:
//! every `period` seconds it reads each host's load average and each
//! directed link's octet counter, converts counter deltas to average
//! utilization over the interval, optionally perturbs the readings with
//! multiplicative Gaussian noise (real SNMP data is not exact), and pushes
//! them into bounded history rings.
//!
//! Everything downstream (the [`crate::Remos`] query API) sees only these
//! sampled histories — never the simulator's ground truth — so selection
//! experiments automatically include measurement staleness and noise.

use nodesel_simnet::{Sim, SimTime};
use nodesel_topology::{Direction, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Collector configuration.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// Sampling period in seconds.
    pub period: f64,
    /// Number of samples retained per metric (the "fixed window of
    /// history").
    pub window: usize,
    /// Relative standard deviation of multiplicative measurement noise;
    /// `0.0` gives exact readings.
    pub noise: f64,
    /// Seed for the noise stream.
    pub seed: u64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            period: 5.0,
            window: 12,
            noise: 0.0,
            seed: 0,
        }
    }
}

/// Shared sampled state: per-node load histories and per-directed-link
/// utilization histories.
#[derive(Debug)]
pub(crate) struct Samples {
    pub(crate) config: CollectorConfig,
    /// Structural copy of the network (capacities, speeds, names).
    pub(crate) base: Topology,
    /// Load-average history per node index (empty rings for network nodes).
    pub(crate) host: Vec<VecDeque<f64>>,
    /// Utilization (bits/s) history per directed-link slot
    /// (`edge_index * 2 + direction`).
    pub(crate) link: Vec<VecDeque<f64>>,
    /// Octet counter at the previous sample, per slot.
    last_bits: Vec<f64>,
    /// Time of the most recent sample.
    pub(crate) last_sample: Option<SimTime>,
    /// Total samples taken.
    pub(crate) sample_count: u64,
    rng: StdRng,
}

impl Samples {
    fn new(base: Topology, config: CollectorConfig) -> Self {
        let nodes = base.node_count();
        let slots = base.link_count() * 2;
        Samples {
            config,
            base,
            host: vec![VecDeque::new(); nodes],
            link: vec![VecDeque::new(); slots],
            last_bits: vec![0.0; slots],
            last_sample: None,
            sample_count: 0,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    fn noisy(&mut self, x: f64) -> f64 {
        if self.config.noise == 0.0 {
            return x;
        }
        // Box–Muller with a throwaway pair member keeps this simple; noise
        // volume is tiny compared to the simulation.
        let u1: f64 = 1.0 - self.rng.random::<f64>();
        let u2: f64 = self.rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (x * (1.0 + self.config.noise * z)).max(0.0)
    }

    fn push(ring: &mut VecDeque<f64>, window: usize, x: f64) {
        if ring.len() == window {
            ring.pop_front();
        }
        ring.push_back(x);
    }

    fn take_sample(&mut self, sim: &Sim) {
        let now = sim.now();
        let dt = self
            .last_sample
            .map(|t| now.seconds_since(t))
            .unwrap_or(self.config.period);
        let window = self.config.window;
        for id in self.base.node_ids().collect::<Vec<_>>() {
            if self.base.node(id).is_compute() {
                let v = sim.load_avg(id);
                let v = self.noisy(v);
                Self::push(&mut self.host[id.index()], window, v);
            }
        }
        for e in self.base.edge_ids().collect::<Vec<_>>() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                let slot = e.index() * 2 + dir as usize;
                // Exact octet counter at the sample instant: the flow
                // table accumulates bits on every rate change and
                // extrapolates at the current rate on read, so lazy
                // settlement is invisible to this measurement path.
                let bits = sim.link_bits(e, dir);
                let rate = if dt > 0.0 {
                    (bits - self.last_bits[slot]).max(0.0) / dt
                } else {
                    0.0
                };
                self.last_bits[slot] = bits;
                let rate = self.noisy(rate);
                Self::push(&mut self.link[slot], window, rate);
            }
        }
        self.last_sample = Some(now);
        self.sample_count += 1;
    }
}

/// Handle to the shared sample store; cloneable, single-threaded.
pub(crate) type SharedSamples = Rc<RefCell<Samples>>;

/// Installs a collector into the simulator and returns the shared store.
///
/// The first sample is taken one period after installation (counters need
/// a baseline interval), then every period thereafter, forever. Use
/// [`Sim::run_until`] to bound execution.
pub(crate) fn install(sim: &mut Sim, config: CollectorConfig) -> SharedSamples {
    assert!(config.period > 0.0, "sampling period must be positive");
    assert!(config.window >= 1, "window must hold at least one sample");
    let samples = Rc::new(RefCell::new(Samples::new(sim.topology().clone(), config)));
    // Baseline the octet counters at install time.
    {
        let mut s = samples.borrow_mut();
        for e in sim.topology().edge_ids().collect::<Vec<_>>() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                let slot = e.index() * 2 + dir as usize;
                s.last_bits[slot] = sim.link_bits(e, dir);
            }
        }
        s.last_sample = Some(sim.now());
        s.sample_count = 0;
    }
    schedule_sample(sim, samples.clone());
    samples
}

fn schedule_sample(sim: &mut Sim, samples: SharedSamples) {
    let period = samples.borrow().config.period;
    sim.schedule_in(period, move |s| {
        samples.borrow_mut().take_sample(s);
        schedule_sample(s, samples);
    });
}

/// Convenience used by tests: the most recently sampled load average of
/// a node, if any sample exists.
#[cfg(test)]
pub(crate) fn latest_host(samples: &Samples, node: nodesel_topology::NodeId) -> Option<f64> {
    samples.host[node.index()].back().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    #[test]
    fn sampling_cadence() {
        let (topo, _) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let s = install(
            &mut sim,
            CollectorConfig {
                period: 5.0,
                ..CollectorConfig::default()
            },
        );
        sim.run_until(SimTime::from_secs(26));
        assert_eq!(s.borrow().sample_count, 5);
    }

    #[test]
    fn load_history_tracks_running_job() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let s = install(&mut sim, CollectorConfig::default());
        sim.start_compute(ids[0], 1e9, |_| {});
        sim.run_until(SimTime::from_secs(600));
        let st = s.borrow();
        let h0 = latest_host(&st, ids[0]).unwrap();
        let h1 = latest_host(&st, ids[1]).unwrap();
        assert!(h0 > 0.9, "loaded host measured {h0}");
        assert!(h1 < 0.01, "idle host measured {h1}");
    }

    #[test]
    fn link_history_measures_flow_rate() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let e = topo.edge_ids().next().unwrap();
        let fwd = topo
            .link(e)
            .direction_from(topo.node_by_name("hub").unwrap());
        let mut sim = Sim::new(topo);
        let s = install(&mut sim, CollectorConfig::default());
        // Long flow n0 -> n1 at full line rate (crosses hub).
        sim.start_transfer(ids[0], ids[1], 1e18, |_| {});
        sim.run_until(SimTime::from_secs(60));
        let st = s.borrow();
        // The hub->n1 access link direction carries 100 Mbps; locate its
        // slot via the second edge (hub-n1 is edge index 1).
        let e1 = nodesel_topology::EdgeId::from_index(1);
        let slot = e1.index() * 2 + fwd as usize;
        let measured = *st.link[slot].back().unwrap();
        assert!(
            (measured - 100.0 * MBPS).abs() < MBPS,
            "measured {measured}"
        );
    }

    #[test]
    fn window_is_bounded() {
        let (topo, _) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let s = install(
            &mut sim,
            CollectorConfig {
                period: 1.0,
                window: 4,
                ..CollectorConfig::default()
            },
        );
        sim.run_until(SimTime::from_secs(60));
        let st = s.borrow();
        for ring in &st.host {
            assert!(ring.len() <= 4);
        }
        for ring in &st.link {
            assert!(ring.len() <= 4);
        }
    }

    #[test]
    fn noise_is_deterministic_and_nonnegative() {
        let run = |seed| {
            let (topo, ids) = star(2, 100.0 * MBPS);
            let mut sim = Sim::new(topo);
            let s = install(
                &mut sim,
                CollectorConfig {
                    noise: 0.2,
                    seed,
                    ..CollectorConfig::default()
                },
            );
            sim.start_compute(ids[0], 1e9, |_| {});
            sim.run_until(SimTime::from_secs(300));
            let st = s.borrow();
            let v: Vec<f64> = st.host[ids[0].index()].iter().copied().collect();
            assert!(v.iter().all(|&x| x >= 0.0));
            v
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
