//! Trial-harness bench: straight-through trials (every cell pays its own
//! warm-up) vs the warm-fork harness (cells sharing a `(condition, seed)`
//! pair fork one warmed simulator). Reports trials/sec for both modes,
//! asserts they produce bit-identical cells, prints a speedup table, and
//! writes a machine-readable `BENCH_experiments.json` to the workspace
//! root so the perf trajectory is comparable across PRs. The parallel
//! flat-queue runner (`run_table1_on`) is measured separately so the
//! fork-sharing win is not conflated with thread parallelism.

use criterion::{criterion_group, criterion_main, Criterion};
use nodesel_apps::AppModel;
use nodesel_experiments::table1::{run_table1_on, Table1Config};
use nodesel_experiments::{
    run_trial, warm_trial, Condition, Strategy, Testbed, TrialConfig, TrialResult,
};
use std::hint::black_box;
use std::time::Instant;

/// Repetition groups per mode: each group is one `(condition, seed)`
/// warm-up shared by all cells of the suite.
const GROUPS: usize = 4;

/// Cells per group: every paper app under both table strategies.
fn suite_cells() -> Vec<(AppModel, usize, Strategy)> {
    AppModel::paper_suite()
        .into_iter()
        .flat_map(|(app, m)| {
            [Strategy::Random, Strategy::Automatic]
                .into_iter()
                .map(move |s| (app.clone(), m, s))
        })
        .collect()
}

fn group_seed(g: usize) -> u64 {
    41 + 1_000_003 * g as u64
}

/// Every cell warms its own simulator from scratch.
fn straight_through(testbed: &Testbed, cfg: &TrialConfig) -> Vec<TrialResult> {
    let cells = suite_cells();
    let mut out = Vec::with_capacity(GROUPS * cells.len());
    for g in 0..GROUPS {
        for (app, m, strategy) in &cells {
            out.push(run_trial(
                testbed,
                app,
                *m,
                *strategy,
                Condition::Both,
                cfg,
                group_seed(g),
            ));
        }
    }
    out
}

/// One warm-up per group; each cell continues from a fork of it.
fn warm_fork(testbed: &Testbed, cfg: &TrialConfig) -> Vec<TrialResult> {
    let cells = suite_cells();
    let mut out = Vec::with_capacity(GROUPS * cells.len());
    for g in 0..GROUPS {
        let mut warm = Some(warm_trial(testbed, Condition::Both, cfg, group_seed(g)));
        for (k, (app, m, strategy)) in cells.iter().enumerate() {
            let w = if k + 1 == cells.len() {
                warm.take().expect("warm state consumed early")
            } else {
                warm.as_ref().expect("warm state consumed early").fork()
            };
            out.push(w.finish(app, *m, *strategy));
        }
    }
    out
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn emit_summary(c: &mut Criterion) {
    let testbed = Testbed::cmu();
    let cfg = TrialConfig::default();
    let trials = GROUPS * suite_cells().len();

    // Parity first: the speedup below is only worth reporting if the two
    // modes compute the same cells bit-for-bit.
    let a = straight_through(&testbed, &cfg);
    let b = warm_fork(&testbed, &cfg);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.elapsed.to_bits(),
            y.elapsed.to_bits(),
            "warm-fork cell diverged from straight-through"
        );
        assert_eq!(x.nodes, y.nodes, "selection diverged");
    }

    const ITERS: usize = 3;
    let mut slow: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            black_box(straight_through(&testbed, &cfg));
            t.elapsed().as_secs_f64()
        })
        .collect();
    let mut fast: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t = Instant::now();
            black_box(warm_fork(&testbed, &cfg));
            t.elapsed().as_secs_f64()
        })
        .collect();
    let (slow, fast) = (median(&mut slow), median(&mut fast));
    let (straight_tps, fork_tps) = (trials as f64 / slow, trials as f64 / fast);

    // The full parallel harness over the same work (7 columns per app:
    // the real Table 1), measured as its own end-to-end rate.
    let apps = AppModel::paper_suite();
    let t1cfg = Table1Config {
        repetitions: GROUPS,
        seed: 41,
        ..Table1Config::default()
    };
    let parallel_trials = apps.len() * 7 * GROUPS;
    let t = Instant::now();
    black_box(run_table1_on(&testbed, &apps, &t1cfg));
    let parallel_wall = t.elapsed().as_secs_f64();
    let parallel_tps = parallel_trials as f64 / parallel_wall;

    eprintln!(
        "\n=== trial harness: {trials} cells, warm-up {}s ===",
        cfg.warmup
    );
    eprintln!("{:<28} {:>12} {:>12}", "mode", "wall secs", "trials/sec");
    eprintln!(
        "{:<28} {slow:>12.2} {straight_tps:>12.2}",
        "straight-through (serial)"
    );
    eprintln!("{:<28} {fast:>12.2} {fork_tps:>12.2}", "warm-fork (serial)");
    eprintln!(
        "{:<28} {parallel_wall:>12.2} {parallel_tps:>12.2}",
        "warm-fork flat queue"
    );
    eprintln!(
        "fork-sharing speedup (serial, same thread count): {:.2}x",
        slow / fast
    );

    let summary = serde_json::json!({
        "bench": "table1_harness",
        "testbed": "cmu",
        "warmup_secs": cfg.warmup,
        "groups": GROUPS,
        "trials": trials,
        "straight_through": { "wall_secs": slow, "trials_per_sec": straight_tps },
        "warm_fork": { "wall_secs": fast, "trials_per_sec": fork_tps },
        "fork_sharing_speedup": slow / fast,
        "parallel_flat_queue": {
            "trials": parallel_trials,
            "wall_secs": parallel_wall,
            "trials_per_sec": parallel_tps,
            "threads": std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        },
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_experiments.json");
    match std::fs::write(path, format!("{:#}\n", summary)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let mut group = c.benchmark_group("table1_harness");
    group.sample_size(10);
    group.bench_function("straight_through", |bch| {
        bch.iter(|| black_box(straight_through(&testbed, &cfg)))
    });
    group.bench_function("warm_fork", |bch| {
        bch.iter(|| black_box(warm_fork(&testbed, &cfg)))
    });
    group.finish();
}

criterion_group!(benches, emit_summary);
criterion_main!(benches);
