//! Latency-aware selection (§3.4, "Latency and other considerations").
//!
//! The paper's procedures optimize load and bandwidth only; link latency
//! is explicitly named as future work ("Remos API includes this
//! information and we plan to take these factors into consideration").
//! This module implements that extension: select a node set whose
//! **pairwise one-way latency never exceeds a bound** while optimizing
//! the usual balanced objective.
//!
//! # Approach
//!
//! Pairwise latency over static routes is fixed — edge deletion does not
//! reroute — so the bound is a *clique* constraint on the "latency ≤ D"
//! graph, which is NP-hard in general. On acyclic topologies, however,
//! route latencies form a **tree metric**, and a classic property of tree
//! metrics applies: a set of diameter ≤ D is exactly a set contained in a
//! ball of radius D/2 centered at some vertex or at the midpoint of some
//! edge. Enumerating those O(n + e) candidate balls and running the
//! balanced selection restricted to each ball therefore finds the optimal
//! latency-feasible set on trees (and a sound, slightly conservative one
//! on static-routed cyclic graphs).

use crate::request::{Constraints, GreedyPolicy};
use crate::weights::Weights;
use crate::{balanced, SelectError, Selection};
use nodesel_topology::{NodeId, Routes, Topology};
use std::collections::HashSet;

/// Numerical slack when comparing latencies (they are sums of f64 link
/// latencies computed along different routes).
const EPS: f64 = 1e-12;

/// The maximum one-way latency between any pair of `nodes` over the fixed
/// routes (0 for singleton sets).
pub fn pairwise_latency(routes: &Routes<'_>, nodes: &[NodeId]) -> f64 {
    let mut worst = 0.0f64;
    for (i, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(i + 1) {
            let l = routes.latency(a, b).expect("selected nodes are connected");
            worst = worst.max(l);
        }
    }
    worst
}

/// One candidate ball: every compute node within `radius` of the center.
fn ball_members(
    topo: &Topology,
    routes: &Routes<'_>,
    dist_to: impl Fn(NodeId) -> Option<f64>,
    radius: f64,
) -> HashSet<NodeId> {
    let _ = routes;
    topo.compute_nodes()
        .filter(|&v| dist_to(v).is_some_and(|d| d <= radius + EPS))
        .collect()
}

/// Selects `m` nodes maximizing the balanced objective subject to every
/// pairwise latency being at most `max_latency` seconds.
///
/// Optimal on acyclic topologies (see module docs); on cyclic topologies
/// with static routing it remains *sound* (the returned set always
/// satisfies the bound — verified before returning) but may miss sets
/// that only qualify under non-tree metrics.
pub fn select_within_latency(
    topo: &Topology,
    m: usize,
    max_latency: f64,
    weights: Weights,
    constraints: &Constraints,
    policy: GreedyPolicy,
) -> Result<Selection, SelectError> {
    assert!(max_latency >= 0.0, "latency bound must be non-negative");
    if m == 0 {
        return Err(SelectError::ZeroCount);
    }
    let routes = topo.routes();
    let radius = max_latency / 2.0;

    // Candidate centers: every node, and the midpoint of every edge.
    let mut balls: Vec<HashSet<NodeId>> = Vec::new();
    for c in topo.node_ids() {
        let members = ball_members(topo, &routes, |v| routes.latency(c, v).ok(), radius);
        if members.len() >= m {
            balls.push(members);
        }
    }
    for e in topo.edge_ids() {
        let link = topo.link(e);
        let half = link.latency() / 2.0;
        let (a, b) = (link.a(), link.b());
        let members = ball_members(
            topo,
            &routes,
            |v| {
                let da = routes.latency(a, v).ok()?;
                let db = routes.latency(b, v).ok()?;
                Some((da + half).min(db + half))
            },
            radius,
        );
        if members.len() >= m {
            balls.push(members);
        }
    }
    balls.sort_by_key(|b| {
        let mut v: Vec<NodeId> = b.iter().copied().collect();
        v.sort_unstable();
        v
    });
    balls.dedup();

    let mut best: Option<Selection> = None;
    let mut any_eligible = false;
    for ball in balls {
        // Intersect the ball with the caller's allowed set.
        let allowed: HashSet<NodeId> = match &constraints.allowed {
            Some(a) => ball.intersection(a).copied().collect(),
            None => ball,
        };
        if allowed.len() < m {
            continue;
        }
        any_eligible = true;
        let sub = Constraints {
            allowed: Some(allowed),
            required: constraints.required.clone(),
            min_cpu: constraints.min_cpu,
            min_bandwidth: constraints.min_bandwidth,
            max_staleness: constraints.max_staleness,
        };
        let Ok(sel) = balanced(topo, m, weights, &sub, None, policy) else {
            continue;
        };
        // Sound even off-trees: verify the bound on the actual routes.
        if pairwise_latency(&routes, &sel.nodes) > max_latency + EPS {
            continue;
        }
        match &best {
            Some(b) if b.score >= sel.score => {}
            _ => best = Some(sel),
        }
    }
    best.ok_or(if any_eligible {
        SelectError::Unsatisfiable
    } else {
        SelectError::NotEnoughNodes {
            eligible: 0,
            requested: m,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::Combinations;
    use crate::quality::evaluate;
    use nodesel_topology::units::MBPS;
    use nodesel_topology::Topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A chain with 1 ms per hop: a - b - c - d - e.
    fn chain_1ms(n: usize) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| t.add_compute_node(format!("n{i}"), 1.0))
            .collect();
        for w in ids.windows(2) {
            t.add_link_full(w[0], w[1], 100.0 * MBPS, 100.0 * MBPS, 1e-3);
        }
        (t, ids)
    }

    #[test]
    fn bound_restricts_to_adjacent_nodes() {
        let (t, ids) = chain_1ms(5);
        // 1 ms bound: only adjacent pairs qualify.
        let sel = select_within_latency(
            &t,
            2,
            1e-3,
            Weights::EQUAL,
            &Constraints::none(),
            GreedyPolicy::Sweep,
        )
        .unwrap();
        let routes = t.routes();
        assert!(pairwise_latency(&routes, &sel.nodes) <= 1e-3 + 1e-12);
        assert_eq!(sel.nodes.len(), 2);
        let gap = sel.nodes[1].index() - sel.nodes[0].index();
        assert_eq!(gap, 1);
        let _ = ids;
    }

    #[test]
    fn bound_interacts_with_load() {
        let (mut t, ids) = chain_1ms(5);
        // n0, n1 idle; n2..n4 loaded. A 1 ms bound forces adjacency, and
        // the best adjacent idle pair is (n0, n1).
        for &n in &ids[2..] {
            t.set_load_avg(n, 3.0);
        }
        let sel = select_within_latency(
            &t,
            2,
            1e-3,
            Weights::EQUAL,
            &Constraints::none(),
            GreedyPolicy::Sweep,
        )
        .unwrap();
        assert_eq!(sel.nodes, vec![ids[0], ids[1]]);
        // A looser 4 ms bound doesn't change the answer (idle pair still
        // best), but a 2-of-loaded-only allowed-set does.
        let allowed: std::collections::HashSet<_> = ids[2..].iter().copied().collect();
        let sel = select_within_latency(
            &t,
            2,
            1e-3,
            Weights::EQUAL,
            &Constraints {
                allowed: Some(allowed),
                ..Constraints::none()
            },
            GreedyPolicy::Sweep,
        )
        .unwrap();
        assert!(sel.nodes[1].index() - sel.nodes[0].index() == 1);
        assert!(sel.nodes[0].index() >= 2);
    }

    #[test]
    fn infeasible_bound_errors() {
        let (t, _) = chain_1ms(4);
        // Four nodes within 1 ms of each other do not exist on the chain.
        assert!(select_within_latency(
            &t,
            4,
            1e-3,
            Weights::EQUAL,
            &Constraints::none(),
            GreedyPolicy::Sweep,
        )
        .is_err());
        // Zero bound: only singletons qualify.
        let sel = select_within_latency(
            &t,
            1,
            0.0,
            Weights::EQUAL,
            &Constraints::none(),
            GreedyPolicy::Sweep,
        )
        .unwrap();
        assert_eq!(sel.nodes.len(), 1);
    }

    #[test]
    fn matches_exhaustive_on_random_trees() {
        // Brute-force ground truth: best balanced score among all m-sets
        // with pairwise latency within the bound.
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut topo, computes) =
                nodesel_topology::builders::random_tree(&mut rng, 6, 3, 100.0 * MBPS);
            // Random latencies and loads. Latencies live on links, which
            // builders create with zero latency, so rebuild conditions:
            for n in &computes {
                topo.set_load_avg(*n, rng.random_range(0.0..3.0));
            }
            // Random latency per link requires add_link_full at build time;
            // builders use zero. Instead derive a latency bound from hop
            // count by giving every link the same latency via a fresh
            // topology copy is not possible post-hoc — so test with the
            // chain builder instead for latency structure, and with the
            // random tree for the load/bandwidth interplay at a permissive
            // bound (every set qualifies => must equal plain balanced).
            let m = 3;
            let unrestricted = balanced(
                &topo,
                m,
                Weights::EQUAL,
                &Constraints::none(),
                None,
                GreedyPolicy::Sweep,
            )
            .unwrap();
            let bounded = select_within_latency(
                &topo,
                m,
                10.0,
                Weights::EQUAL,
                &Constraints::none(),
                GreedyPolicy::Sweep,
            )
            .unwrap();
            assert!(
                (bounded.score - unrestricted.score).abs() < 1e-9,
                "seed {seed}: bounded {} vs unrestricted {}",
                bounded.score,
                unrestricted.score
            );
        }
    }

    #[test]
    fn exhaustive_comparison_on_latency_chain() {
        // On a chain with per-hop latency, compare against brute force for
        // several bounds and loads.
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (mut t, ids) = chain_1ms(7);
            for &n in &ids {
                t.set_load_avg(n, rng.random_range(0.0..3.0));
            }
            let routes = t.routes();
            let m = 3;
            let bound = [1.5e-3, 2.5e-3, 4.5e-3][seed as usize % 3];
            // Brute force.
            let mut best: Option<f64> = None;
            for combo in Combinations::new(ids.len(), m) {
                let nodes: Vec<NodeId> = combo.iter().map(|&i| ids[i]).collect();
                if pairwise_latency(&routes, &nodes) > bound + 1e-12 {
                    continue;
                }
                let q = evaluate(&t, &routes, &nodes, None);
                let s = q.score(Weights::EQUAL);
                best = Some(best.map_or(s, |b: f64| b.max(s)));
            }
            let greedy = select_within_latency(
                &t,
                m,
                bound,
                Weights::EQUAL,
                &Constraints::none(),
                GreedyPolicy::Sweep,
            );
            match (best, greedy) {
                (Some(b), Ok(g)) => assert!(
                    (g.score - b).abs() < 1e-9,
                    "seed {seed}: greedy {} vs brute {b}",
                    g.score
                ),
                (None, Err(_)) => {}
                (b, g) => panic!("seed {seed}: feasibility disagreement {b:?} vs {g:?}"),
            }
        }
    }

    #[test]
    fn pairwise_latency_of_singleton_is_zero() {
        let (t, ids) = chain_1ms(3);
        let routes = t.routes();
        assert_eq!(pairwise_latency(&routes, &ids[..1]), 0.0);
        assert!((pairwise_latency(&routes, &ids) - 2e-3).abs() < 1e-12);
    }
}
