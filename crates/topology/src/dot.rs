//! Graphviz (DOT) export of topology snapshots.
//!
//! Produces output mirroring the paper's figures: compute nodes as boxes,
//! network nodes as ellipses, links labeled `bw/maxbw`, and an optional set
//! of *selected* nodes drawn with bold borders (as in Figure 4).

use crate::units::MBPS;
use crate::{NodeId, Topology};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders the topology as a DOT graph.
///
/// `selected` nodes are emphasized with a bold border and grey fill, the
/// convention Figure 4 uses for automatically selected nodes.
pub fn to_dot(topo: &Topology, selected: &[NodeId]) -> String {
    let selected: HashSet<NodeId> = selected.iter().copied().collect();
    let mut out = String::new();
    out.push_str("graph topology {\n");
    out.push_str("  graph [overlap=false, splines=true];\n");
    for id in topo.node_ids() {
        let n = topo.node(id);
        let shape = if n.is_compute() { "box" } else { "ellipse" };
        let extra = if selected.contains(&id) {
            ", style=\"bold,filled\", fillcolor=lightgrey, penwidth=2.5"
        } else {
            ""
        };
        let label = if n.is_compute() {
            format!("{}\\ncpu={:.2}", n.name(), n.cpu())
        } else {
            n.name().to_string()
        };
        writeln!(
            out,
            "  \"{}\" [shape={shape}, label=\"{label}\"{extra}];",
            n.name()
        )
        .unwrap();
    }
    for e in topo.edge_ids() {
        let l = topo.link(e);
        writeln!(
            out,
            "  \"{}\" -- \"{}\" [label=\"{:.0}/{:.0} Mbps\"];",
            topo.node(l.a()).name(),
            topo.node(l.b()).name(),
            l.bw() / MBPS,
            l.maxbw() / MBPS,
        )
        .unwrap();
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn dot_contains_all_elements() {
        let (t, leaves) = builders::star(3, builders::DEFAULT_CAPACITY);
        let dot = to_dot(&t, &leaves[..1]);
        assert!(dot.starts_with("graph topology {"));
        assert!(dot.ends_with("}\n"));
        for id in t.node_ids() {
            assert!(dot.contains(t.node(id).name()));
        }
        // One selected node gets the bold style.
        assert_eq!(dot.matches("penwidth=2.5").count(), 1);
        // Hub links all appear.
        assert_eq!(dot.matches(" -- ").count(), 3);
    }

    #[test]
    fn dot_labels_show_availability() {
        let (mut t, _) = builders::star(2, builders::DEFAULT_CAPACITY);
        let e = t.edge_ids().next().unwrap();
        t.set_link_used(e, crate::Direction::AtoB, 60.0 * MBPS);
        let dot = to_dot(&t, &[]);
        assert!(dot.contains("40/100 Mbps"));
        assert!(dot.contains("100/100 Mbps"));
    }
}
