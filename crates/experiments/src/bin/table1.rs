//! Regenerates Table 1 and prints measured-vs-paper comparisons.
//!
//! Usage: `table1 [repetitions] [seed]` (defaults: 24 reps, fixed seed).
//! Emits the measured table, the paper's table, and the headline
//! increase-ratio metric. Add `--json` to also dump machine-readable rows.

use nodesel_experiments::table1::{paper_table1, run_table1, Table1Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let mut config = Table1Config::default();
    if let Some(r) = positional.first().and_then(|s| s.parse().ok()) {
        config.repetitions = r;
    }
    if let Some(s) = positional.get(1).and_then(|s| s.parse().ok()) {
        config.seed = s;
    }
    eprintln!(
        "running Table 1: {} repetitions per cell (7 cells × 3 apps)...",
        config.repetitions
    );
    let table = run_table1(&config);
    println!("=== Measured (simulated CMU testbed) ===");
    println!("{table}");
    println!("=== Paper (Table 1) ===");
    for row in &table.rows {
        if let Some(p) = paper_table1(&row.app) {
            println!(
                "{:<10} random: {:>6.1} {:>6.1} {:>6.1} | auto: {:>6.1} {:>6.1} {:>6.1} | ref {:>6.1}",
                row.app, p.random[0], p.random[1], p.random[2], p.auto[0], p.auto[1], p.auto[2], p.reference
            );
        }
    }
    if json {
        println!("{}", serde_json::to_string_pretty(&table).unwrap());
    }
}
