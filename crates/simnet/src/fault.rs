//! Fault injection: seeded plans of link failures, node crashes, and
//! subnet partitions, executed by a fork-safe driver.
//!
//! A [`FaultPlan`] is pure data: a list of scheduled actions (seconds
//! after installation) plus stochastic up/down [`Flap`] processes with
//! exponentially distributed dwell times drawn from a SplitMix64 stream
//! seeded by the plan. [`install_faults`] turns it into a
//! [`FaultDriver`] — a [`DriverLogic`] state machine living *inside* the
//! simulator — so a [`Sim::fork`](crate::Sim::fork) clones the remaining
//! schedule, the flap phases and the RNG states, and a forked run
//! replays the exact same failures.
//!
//! Semantics are the engine's: a downed link drops to zero effective
//! capacity (crossing flows starve at rate 0 and stall, the
//! administratively-down path); a crashed node kills its tasks, aborts
//! its endpoint flows and takes its incident links with it; a partition
//! cuts every link with exactly one endpoint inside the named group.

use crate::engine::{DriverId, DriverLogic, Sim};
use crate::time::SimTime;
use nodesel_topology::{EdgeId, NodeId, Topology};
use std::collections::HashSet;

/// One fault action, applied instantaneously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Take a link down (no-op if already down).
    LinkDown(EdgeId),
    /// Bring a link back up (no-op if already up).
    LinkUp(EdgeId),
    /// Crash a node (no-op if already down).
    CrashNode(NodeId),
    /// Reboot a crashed node (no-op if already up).
    RebootNode(NodeId),
    /// Partition the named group from the rest of the network: every
    /// link with exactly one endpoint in the group goes down.
    Partition(Vec<NodeId>),
    /// Heal a partition: the group's boundary links come back up (links
    /// that were downed independently come up too).
    Heal(Vec<NodeId>),
}

/// The target of a stochastic up/down process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlapTarget {
    /// A flapping link.
    Link(EdgeId),
    /// A node that repeatedly crashes and reboots.
    Node(NodeId),
}

/// A stochastic up/down process: exponentially distributed dwell times
/// in each state, alternating failure and repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flap {
    /// What flaps.
    pub target: FlapTarget,
    /// Mean seconds spent up before the next failure.
    pub mean_up: f64,
    /// Mean seconds spent down before repair.
    pub mean_down: f64,
}

/// A seeded, fully deterministic fault plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// `(seconds after install, action)` pairs; equal-time actions
    /// execute in list order.
    pub scheduled: Vec<(f64, FaultAction)>,
    /// Stochastic flap processes, each with its own derived RNG stream.
    pub flaps: Vec<Flap>,
    /// Seed for the stochastic processes.
    pub seed: u64,
}

impl FaultPlan {
    /// True when the plan injects nothing: installing it schedules no
    /// events at all, so the run is bit-identical to one without it.
    pub fn is_empty(&self) -> bool {
        self.scheduled.is_empty() && self.flaps.is_empty()
    }
}

/// Counters of fault actions that actually changed state (a `LinkDown`
/// on an already-down link counts nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Links taken down (including partition boundary cuts).
    pub link_downs: u64,
    /// Links restored.
    pub link_ups: u64,
    /// Nodes crashed.
    pub crashes: u64,
    /// Nodes rebooted.
    pub reboots: u64,
}

impl FaultStats {
    /// Total state-changing fault events executed.
    pub fn total(&self) -> u64 {
        self.link_downs + self.link_ups + self.crashes + self.reboots
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exponential dwell with the given mean; strictly positive (the
/// uniform draw lands in `(0, 1]`, and the result is floored at 1 ns so
/// a flap can never stall the driver on a zero-length dwell).
fn exp_dwell(state: &mut u64, mean: f64) -> f64 {
    let u = ((splitmix(state) >> 11) as f64 + 1.0) * (1.0 / 9007199254740992.0);
    (-mean * u.ln()).max(1e-9)
}

#[derive(Debug, Clone)]
struct FlapState {
    flap: Flap,
    /// Current state of the target as driven by this process.
    up: bool,
    /// Absolute time of the next toggle.
    next: SimTime,
    rng: u64,
}

/// The driver executing a [`FaultPlan`]. All state is data (remaining
/// schedule cursor, flap phases, SplitMix64 RNG words), so it clones
/// across [`Sim::fork`](crate::Sim::fork) and the forked continuation
/// replays the fault sequence bit-identically.
#[derive(Debug, Clone)]
pub struct FaultDriver {
    /// Absolute-time schedule, sorted stably by time.
    scheduled: Vec<(SimTime, FaultAction)>,
    cursor: usize,
    flaps: Vec<FlapState>,
    stats: FaultStats,
}

impl FaultDriver {
    /// Counters of executed state-changing fault events.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// True when no further fault event will ever fire.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.scheduled.len() && self.flaps.is_empty()
    }

    fn next_event(&self) -> SimTime {
        let mut next = self
            .scheduled
            .get(self.cursor)
            .map_or(SimTime::NEVER, |&(t, _)| t);
        for f in &self.flaps {
            next = next.min(f.next);
        }
        next
    }

    fn execute(&mut self, sim: &mut Sim, action: &FaultAction) {
        match action {
            FaultAction::LinkDown(e) => {
                if sim.set_link_up(*e, false) {
                    self.stats.link_downs += 1;
                }
            }
            FaultAction::LinkUp(e) => {
                if sim.set_link_up(*e, true) {
                    self.stats.link_ups += 1;
                }
            }
            FaultAction::CrashNode(n) => {
                if sim.crash_node(*n) {
                    self.stats.crashes += 1;
                }
            }
            FaultAction::RebootNode(n) => {
                if sim.reboot_node(*n) {
                    self.stats.reboots += 1;
                }
            }
            FaultAction::Partition(group) => {
                for e in boundary_edges(sim.topology(), group) {
                    if sim.set_link_up(e, false) {
                        self.stats.link_downs += 1;
                    }
                }
            }
            FaultAction::Heal(group) => {
                for e in boundary_edges(sim.topology(), group) {
                    if sim.set_link_up(e, true) {
                        self.stats.link_ups += 1;
                    }
                }
            }
        }
    }

    fn apply_flap(&mut self, sim: &mut Sim, target: FlapTarget, up: bool) {
        let action = match (target, up) {
            (FlapTarget::Link(e), false) => FaultAction::LinkDown(e),
            (FlapTarget::Link(e), true) => FaultAction::LinkUp(e),
            (FlapTarget::Node(n), false) => FaultAction::CrashNode(n),
            (FlapTarget::Node(n), true) => FaultAction::RebootNode(n),
        };
        self.execute(sim, &action);
    }
}

impl DriverLogic for FaultDriver {
    fn fire(&mut self, sim: &mut Sim, me: DriverId) {
        let now = sim.now();
        while self.cursor < self.scheduled.len() && self.scheduled[self.cursor].0 <= now {
            let action = self.scheduled[self.cursor].1.clone();
            self.cursor += 1;
            self.execute(sim, &action);
        }
        for i in 0..self.flaps.len() {
            loop {
                let target;
                let goes_up;
                {
                    let f = &mut self.flaps[i];
                    if f.next > now {
                        break;
                    }
                    f.up = !f.up;
                    goes_up = f.up;
                    target = f.flap.target;
                    let mean = if f.up {
                        f.flap.mean_up
                    } else {
                        f.flap.mean_down
                    };
                    let dwell = exp_dwell(&mut f.rng, mean);
                    f.next = f.next.after_secs_f64(dwell);
                }
                self.apply_flap(sim, target, goes_up);
            }
        }
        let next = self.next_event();
        if next != SimTime::NEVER {
            sim.schedule_driver_in(next.seconds_since(now).max(0.0), me);
        }
    }
}

/// Every link with exactly one endpoint inside `group` — the cut a
/// partition severs.
fn boundary_edges(topo: &Topology, group: &[NodeId]) -> Vec<EdgeId> {
    let inside: HashSet<NodeId> = group.iter().copied().collect();
    topo.edge_ids()
        .filter(|&e| {
            let l = topo.link(e);
            inside.contains(&l.a()) != inside.contains(&l.b())
        })
        .collect()
}

/// Installs `plan` into the simulator and arms its first firing.
///
/// An empty plan installs a driver that never schedules anything, so
/// the run stays bit-identical to one without fault injection (the
/// zero-fault parity guard relies on this). Scheduled times are
/// relative to the simulator clock at installation.
pub fn install_faults(sim: &mut Sim, plan: &FaultPlan) -> DriverId {
    install_faults_impl(sim, None, plan)
}

/// [`install_faults`] with the driver *homed at a node*: its firings are
/// sequenced in (and, under the parallel engine, executed by) that
/// node's partition domain. The plan should only touch nodes and links
/// of that domain, or the owning shard escalates. On an unpartitioned
/// simulator this is bit-identical to [`install_faults`].
pub fn install_faults_at(sim: &mut Sim, home: NodeId, plan: &FaultPlan) -> DriverId {
    install_faults_impl(sim, Some(home), plan)
}

fn install_faults_impl(sim: &mut Sim, home: Option<NodeId>, plan: &FaultPlan) -> DriverId {
    let now = sim.now();
    let mut scheduled: Vec<(SimTime, FaultAction)> = plan
        .scheduled
        .iter()
        .map(|(secs, action)| {
            assert!(
                *secs >= 0.0 && secs.is_finite(),
                "scheduled fault times must be finite and non-negative"
            );
            (now.after_secs_f64(*secs), action.clone())
        })
        .collect();
    // Stable: equal-time actions keep plan order.
    scheduled.sort_by_key(|&(t, _)| t);
    let flaps: Vec<FlapState> = plan
        .flaps
        .iter()
        .enumerate()
        .map(|(i, &flap)| {
            assert!(
                flap.mean_up > 0.0 && flap.mean_down > 0.0,
                "flap dwell means must be positive"
            );
            // One independent SplitMix64 stream per flap process.
            let mut rng = plan
                .seed
                .wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let dwell = exp_dwell(&mut rng, flap.mean_up);
            FlapState {
                flap,
                up: true,
                next: now.after_secs_f64(dwell),
                rng,
            }
        })
        .collect();
    let driver = FaultDriver {
        scheduled,
        cursor: 0,
        flaps,
        stats: FaultStats::default(),
    };
    let id = match home {
        Some(node) => sim.install_driver_at(node, driver),
        None => sim.install_driver(driver),
    };
    let next = sim.driver::<FaultDriver>(id).next_event();
    if next != SimTime::NEVER {
        sim.schedule_driver_in(next.seconds_since(now).max(0.0), id);
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimStats;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    #[test]
    fn empty_plan_schedules_nothing() {
        let (topo, _) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let id = install_faults(&mut sim, &FaultPlan::default());
        sim.run();
        assert_eq!(sim.stats(), SimStats::default());
        assert_eq!(sim.driver::<FaultDriver>(id).stats().total(), 0);
        assert!(sim.driver::<FaultDriver>(id).is_exhausted());
    }

    #[test]
    fn homed_installation_is_bit_identical_on_unpartitioned_sim() {
        let run = |homed: bool| {
            let (topo, ids) = star(4, 100.0 * MBPS);
            let edge = topo.neighbors(ids[1])[0].0;
            let mut sim = Sim::new(topo);
            sim.enable_trace(usize::MAX);
            let plan = FaultPlan {
                scheduled: vec![
                    (5.0, FaultAction::CrashNode(ids[1])),
                    (9.0, FaultAction::RebootNode(ids[1])),
                ],
                flaps: vec![Flap {
                    target: FlapTarget::Link(edge),
                    mean_up: 10.0,
                    mean_down: 2.0,
                }],
                seed: 11,
            };
            let id = if homed {
                install_faults_at(&mut sim, ids[0], &plan)
            } else {
                install_faults(&mut sim, &plan)
            };
            sim.start_transfer_detached(ids[0], ids[1], 1e10);
            sim.start_compute_detached(ids[1], 1e6);
            sim.run_until(SimTime::from_secs(60));
            let stats = sim.driver::<FaultDriver>(id).stats();
            (sim.stats(), sim.take_trace(), stats)
        };
        let plain = run(false);
        let homed = run(true);
        assert_eq!(plain, homed);
        assert!(plain.2.total() > 0, "faults never fired");
    }

    #[test]
    fn scheduled_link_down_stalls_and_up_resumes() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let edge = topo.neighbors(ids[0])[0].0;
        let mut sim = Sim::new(topo);
        let plan = FaultPlan {
            scheduled: vec![
                (1.0, FaultAction::LinkDown(edge)),
                (11.0, FaultAction::LinkUp(edge)),
            ],
            ..FaultPlan::default()
        };
        install_faults(&mut sim, &plan);
        // 2 s of transfer at full rate; the 10 s outage starting at t=1
        // pushes completion from t=2 to t=12 (plus zero latency).
        sim.start_transfer_detached(ids[0], ids[1], 200.0 * MBPS);
        sim.run_for(11.5);
        assert_eq!(sim.stats().completed_flows, 0);
        assert!(!sim.link_effective_up(edge) || sim.link_is_up(edge));
        sim.run_for(1.0);
        assert_eq!(sim.stats().completed_flows, 1);
    }

    #[test]
    fn crash_kills_tasks_and_aborts_endpoint_flows() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let task = sim.start_compute_detached(ids[0], 1e6);
        sim.start_transfer_detached(ids[0], ids[1], 1e12);
        let plan = FaultPlan {
            scheduled: vec![(5.0, FaultAction::CrashNode(ids[0]))],
            ..FaultPlan::default()
        };
        install_faults(&mut sim, &plan);
        sim.run_for(6.0);
        assert!(!sim.node_is_up(ids[0]));
        assert_eq!(sim.take_killed_tasks(), vec![(ids[0], task)]);
        assert_eq!(sim.take_aborted_flows().len(), 1);
        assert_eq!(sim.flow_count(), 0);
        // Work refused while down is surfaced immediately.
        let refused = sim.start_compute_detached(ids[0], 1.0);
        assert_eq!(sim.take_killed_tasks(), vec![(ids[0], refused)]);
    }

    #[test]
    fn partition_cuts_boundary_and_heal_restores() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let plan = FaultPlan {
            scheduled: vec![
                (1.0, FaultAction::Partition(vec![ids[0]])),
                (2.0, FaultAction::Heal(vec![ids[0]])),
            ],
            ..FaultPlan::default()
        };
        let id = install_faults(&mut sim, &plan);
        sim.run_for(1.5);
        let edge = sim.topology().neighbors(ids[0])[0].0;
        assert!(!sim.link_is_up(edge));
        sim.run_for(1.0);
        assert!(sim.link_is_up(edge));
        let stats = sim.driver::<FaultDriver>(id).stats();
        assert_eq!(stats.link_downs, 1);
        assert_eq!(stats.link_ups, 1);
    }

    #[test]
    fn flaps_are_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let (topo, ids) = star(4, 100.0 * MBPS);
            let edge = topo.neighbors(ids[1])[0].0;
            let mut sim = Sim::new(topo);
            let plan = FaultPlan {
                flaps: vec![
                    Flap {
                        target: FlapTarget::Link(edge),
                        mean_up: 20.0,
                        mean_down: 5.0,
                    },
                    Flap {
                        target: FlapTarget::Node(ids[2]),
                        mean_up: 60.0,
                        mean_down: 10.0,
                    },
                ],
                seed,
                ..FaultPlan::default()
            };
            let id = install_faults(&mut sim, &plan);
            sim.run_for(500.0);
            (sim.driver::<FaultDriver>(id).stats(), sim.stats().events)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0, "different seeds should differ");
        let stats = run(7).0;
        assert!(stats.link_downs > 0 && stats.crashes > 0);
        // Up/down alternation keeps the counters within one of each
        // other.
        assert!(stats.link_downs.abs_diff(stats.link_ups) <= 1);
        assert!(stats.crashes.abs_diff(stats.reboots) <= 1);
    }

    #[test]
    fn fault_execution_survives_fork() {
        let (topo, ids) = star(5, 100.0 * MBPS);
        let edge = topo.neighbors(ids[1])[0].0;
        let mut sim = Sim::new(topo);
        let plan = FaultPlan {
            scheduled: vec![(120.0, FaultAction::CrashNode(ids[3]))],
            flaps: vec![Flap {
                target: FlapTarget::Link(edge),
                mean_up: 15.0,
                mean_down: 5.0,
            }],
            seed: 99,
        };
        let id = install_faults(&mut sim, &plan);
        sim.run_for(50.0);
        let mut forked = sim.fork();
        sim.run_for(200.0);
        forked.run_for(200.0);
        assert_eq!(
            sim.driver::<FaultDriver>(id).stats(),
            forked.driver::<FaultDriver>(id).stats()
        );
        assert_eq!(sim.stats(), forked.stats());
        assert_eq!(sim.node_is_up(ids[3]), forked.node_is_up(ids[3]));
        assert_eq!(sim.link_is_up(edge), forked.link_is_up(edge));
    }
}
