//! Estimators mapping a metric's sample history to one value.
//!
//! The Remos API lets applications ask for network information "based on a
//! fixed window of history, current network conditions, or an estimate of
//! the future availability" (paper §2.2). These map onto:
//!
//! * [`Estimator::Latest`] — the most recent sample (current conditions;
//!   also what the paper's node-selection experiments used: "simply uses
//!   the most recent measurements as a forecast for the future");
//! * [`Estimator::WindowMean`] — the mean of the retained history window;
//! * [`Estimator::Ewma`] — exponentially weighted average favouring recent
//!   samples;
//! * [`Estimator::Trend`] — least-squares linear extrapolation one sample
//!   period into the future, clamped at zero (a simple forecast in the
//!   spirit of the Network Weather Service);
//! * [`Estimator::Quantile`] — a window quantile, for conservative
//!   (plan-for-the-bad-case) placement decisions.

use crate::window::Window;

/// How to condense a sample history into an estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Estimator {
    /// Most recent sample.
    Latest,
    /// Mean over the retained window.
    WindowMean,
    /// Exponentially weighted moving average with smoothing factor
    /// `alpha` in `(0, 1]`; `alpha = 1` degenerates to [`Estimator::Latest`].
    Ewma {
        /// Weight of each new sample.
        alpha: f64,
    },
    /// Linear least-squares fit over the window, extrapolated one step
    /// ahead and clamped to be non-negative.
    Trend,
    /// The `q`-quantile of the window (`q` in `[0, 1]`, linear
    /// interpolation). High quantiles of load or utilization give
    /// *conservative* estimates — plan for the bad case rather than the
    /// average — which suits risk-averse placement of long jobs.
    Quantile {
        /// Quantile in `[0, 1]`; `0.5` is the median.
        q: f64,
    },
}

impl Estimator {
    /// Applies the estimator to a history of samples ordered oldest →
    /// newest. Returns 0.0 for an empty history (nothing measured yet —
    /// the conservative choice for *availability* metrics is handled by
    /// callers that know the peak).
    pub fn estimate(self, history: &Window) -> f64 {
        let n = history.len();
        if n == 0 {
            return 0.0;
        }
        match self {
            Estimator::Latest => history.get(n - 1),
            Estimator::WindowMean => history.iter().sum::<f64>() / n as f64,
            Estimator::Ewma { alpha } => {
                assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
                let mut acc = history.get(0);
                for x in history.iter().skip(1) {
                    acc = alpha * x + (1.0 - alpha) * acc;
                }
                acc
            }
            Estimator::Quantile { q } => {
                assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
                let mut sorted: Vec<f64> = history.iter().collect();
                sorted.sort_by(f64::total_cmp);
                let pos = q * (n - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                let frac = pos - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            }
            Estimator::Trend => {
                if n == 1 {
                    return history.get(0);
                }
                // Least squares of y over x = 0..n-1, predicted at x = n.
                let nf = n as f64;
                let sx = (nf - 1.0) * nf / 2.0;
                let sxx = (nf - 1.0) * nf * (2.0 * nf - 1.0) / 6.0;
                let sy: f64 = history.iter().sum();
                let sxy: f64 = history.iter().enumerate().map(|(i, y)| i as f64 * y).sum();
                let denom = nf * sxx - sx * sx;
                if denom.abs() < 1e-12 {
                    return sy / nf;
                }
                let slope = (nf * sxy - sx * sy) / denom;
                let intercept = (sy - slope * sx) / nf;
                (intercept + slope * nf).max(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(xs: &[f64]) -> Window {
        xs.iter().copied().collect()
    }

    #[test]
    fn latest_takes_newest() {
        assert_eq!(Estimator::Latest.estimate(&hist(&[1.0, 2.0, 9.0])), 9.0);
    }

    #[test]
    fn empty_history_is_zero() {
        for e in [
            Estimator::Latest,
            Estimator::WindowMean,
            Estimator::Ewma { alpha: 0.5 },
            Estimator::Trend,
            Estimator::Quantile { q: 0.9 },
        ] {
            assert_eq!(e.estimate(&hist(&[])), 0.0);
        }
    }

    #[test]
    fn window_mean_averages() {
        assert_eq!(
            Estimator::WindowMean.estimate(&hist(&[1.0, 2.0, 3.0, 6.0])),
            3.0
        );
    }

    #[test]
    fn ewma_weights_recent_samples() {
        let e = Estimator::Ewma { alpha: 0.5 };
        // 1, then 0.5*3 + 0.5*1 = 2.
        assert_eq!(e.estimate(&hist(&[1.0, 3.0])), 2.0);
        // alpha = 1 is Latest.
        assert_eq!(
            Estimator::Ewma { alpha: 1.0 }.estimate(&hist(&[1.0, 7.0])),
            7.0
        );
    }

    #[test]
    fn trend_extrapolates_linear_series_exactly() {
        // y = 2x + 1 over x=0..3 predicts y(4) = 9.
        let e = Estimator::Trend;
        assert!((e.estimate(&hist(&[1.0, 3.0, 5.0, 7.0])) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn trend_clamps_at_zero() {
        // Steeply decreasing: raw extrapolation would be negative.
        assert_eq!(Estimator::Trend.estimate(&hist(&[4.0, 2.0, 0.0])), 0.0);
    }

    #[test]
    fn trend_on_single_sample_is_that_sample() {
        assert_eq!(Estimator::Trend.estimate(&hist(&[5.0])), 5.0);
    }

    #[test]
    fn trend_on_constant_series_is_constant() {
        assert!((Estimator::Trend.estimate(&hist(&[2.0, 2.0, 2.0])) - 2.0).abs() < 1e-9);
    }
    #[test]
    fn quantile_interpolates() {
        let h = hist(&[4.0, 1.0, 3.0, 2.0]); // sorted: 1,2,3,4
        assert_eq!(Estimator::Quantile { q: 0.0 }.estimate(&h), 1.0);
        assert_eq!(Estimator::Quantile { q: 1.0 }.estimate(&h), 4.0);
        assert!((Estimator::Quantile { q: 0.5 }.estimate(&h) - 2.5).abs() < 1e-12);
        // p90 of four samples: pos 2.7 => 3·0.3 + 4·0.7 ... careful:
        // sorted[2]=3, sorted[3]=4, frac 0.7 => 3.7.
        assert!((Estimator::Quantile { q: 0.9 }.estimate(&h) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn quantile_on_singleton_and_empty() {
        assert_eq!(Estimator::Quantile { q: 0.9 }.estimate(&hist(&[7.0])), 7.0);
        assert_eq!(Estimator::Quantile { q: 0.9 }.estimate(&hist(&[])), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        Estimator::Quantile { q: 1.5 }.estimate(&hist(&[1.0]));
    }
}
