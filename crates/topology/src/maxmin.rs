//! Max-min fair bandwidth allocation (progressive filling).
//!
//! Given per-resource capacities and a set of flows, each consuming one
//! unit of rate on every resource it crosses, the **max-min fair**
//! allocation maximizes the minimum rate, then the second minimum, and so
//! on. Progressive filling computes it exactly: repeatedly find the
//! resource with the smallest equal share among its unfrozen flows, freeze
//! those flows at that share, subtract, and continue.
//!
//! Two consumers share this module: the simulator's flow table (actual
//! bandwidth of competing transfers) and the Remos flow queries that
//! "account for sharing of network links by multiple flows" (paper §2.2).

/// Dense index of a directed link: `edge_index * 2 + direction`.
#[inline]
pub fn dir_slot(edge: crate::EdgeId, dir: crate::Direction) -> usize {
    edge.index() * 2 + dir as usize
}

/// Computes the max-min fair rate for each flow.
///
/// * `capacity[s]` — capacity of resource (directed link) `s`;
/// * `flow_slots[f]` — the resources flow `f` crosses (deduplicated;
///   static routes never revisit a link).
///
/// Returns one rate per flow. Flows crossing no resources get
/// `f64::INFINITY` (local communication is not bandwidth-limited).
/// Deterministic: the bottleneck chosen each round is the lowest-share,
/// lowest-index resource.
///
/// ```
/// use nodesel_topology::maxmin::max_min_allocate;
/// // Two flows share resource 0 (cap 30); flow 1 alone also crosses
/// // resource 1 (cap 100) and picks up the slack there... flow 2 does:
/// let rates = max_min_allocate(&[30.0, 100.0], &[vec![0], vec![0, 1], vec![1]]);
/// assert_eq!(rates, vec![15.0, 15.0, 85.0]);
/// ```
pub fn max_min_allocate(capacity: &[f64], flow_slots: &[Vec<usize>]) -> Vec<f64> {
    let nf = flow_slots.len();
    let mut rate = vec![f64::INFINITY; nf];
    if nf == 0 {
        return rate;
    }
    let slots = capacity.len();
    let mut remaining: Vec<f64> = capacity.to_vec();
    let mut count = vec![0u32; slots];
    let mut frozen = vec![false; nf];
    let mut unfrozen = 0usize;
    for (f, path) in flow_slots.iter().enumerate() {
        if path.is_empty() {
            frozen[f] = true; // stays at infinity
        } else {
            unfrozen += 1;
            for &s in path {
                debug_assert!(s < slots, "slot out of range");
                count[s] += 1;
            }
        }
    }
    while unfrozen > 0 {
        let mut best: Option<(f64, usize)> = None;
        for s in 0..slots {
            if count[s] == 0 {
                continue;
            }
            let share = remaining[s] / count[s] as f64;
            match best {
                Some((b, _)) if b <= share => {}
                _ => best = Some((share, s)),
            }
        }
        let Some((share, slot)) = best else {
            break;
        };
        let share = share.max(0.0);
        for (f, path) in flow_slots.iter().enumerate() {
            if frozen[f] || !path.contains(&slot) {
                continue;
            }
            frozen[f] = true;
            unfrozen -= 1;
            rate[f] = share;
            for &s in path {
                remaining[s] = (remaining[s] - share).max(0.0);
                count[s] -= 1;
            }
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_bottleneck() {
        let rates = max_min_allocate(&[100.0, 10.0, 50.0], &[vec![0, 1, 2]]);
        assert_eq!(rates, vec![10.0]);
    }

    #[test]
    fn equal_split_on_shared_resource() {
        let rates = max_min_allocate(&[90.0], &[vec![0], vec![0], vec![0]]);
        assert_eq!(rates, vec![30.0, 30.0, 30.0]);
    }

    #[test]
    fn unbottlenecked_flow_takes_the_slack() {
        // Flows A and B share slot 0 (cap 30); flow C shares slot 1 with A
        // (cap 100). A freezes at 15; C then gets 85.
        let rates = max_min_allocate(&[30.0, 100.0], &[vec![0, 1], vec![0], vec![1]]);
        assert_eq!(rates, vec![15.0, 15.0, 85.0]);
    }

    #[test]
    fn empty_path_is_unlimited() {
        let rates = max_min_allocate(&[10.0], &[vec![], vec![0]]);
        assert!(rates[0].is_infinite());
        assert_eq!(rates[1], 10.0);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_allocate(&[1.0], &[]).is_empty());
    }

    #[test]
    fn allocation_never_oversubscribes() {
        // A little mesh of 4 slots and 6 flows with overlapping paths.
        let caps = [40.0, 25.0, 60.0, 10.0];
        let flows = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 2],
            vec![3],
            vec![2, 3],
            vec![0],
        ];
        let rates = max_min_allocate(&caps, &flows);
        let mut used = [0.0f64; 4];
        for (f, path) in flows.iter().enumerate() {
            assert!(rates[f] > 0.0);
            for &s in path {
                used[s] += rates[f];
            }
        }
        for (s, &u) in used.iter().enumerate() {
            assert!(u <= caps[s] * (1.0 + 1e-9), "slot {s} oversubscribed: {u}");
        }
        // Max-min property (spot): every flow is bottlenecked somewhere —
        // on some crossed slot the capacity is (nearly) exhausted.
        for (f, path) in flows.iter().enumerate() {
            let bottlenecked = path.iter().any(|&s| used[s] >= caps[s] - 1e-6);
            assert!(
                bottlenecked,
                "flow {f} (rate {}) is not bottlenecked",
                rates[f]
            );
        }
    }

    #[test]
    fn zero_capacity_resource_starves_its_flows() {
        let rates = max_min_allocate(&[0.0, 100.0], &[vec![0], vec![1]]);
        assert_eq!(rates, vec![0.0, 100.0]);
    }
}
