//! Heterogeneity demonstration (§3.3, "Heterogeneous links and nodes"):
//! on a testbed with double-speed nodes and mixed 10/100/155 Mbps links,
//! the choice of *reference link* changes which fractional bandwidth a
//! raw number represents — the paper's example: "the reference link will
//! determine if 50% available bandwidth is 50 Mbps or 77.5 Mbps" — and
//! node speeds enter through `effective_cpu = cpu × speed`.

use nodesel_core::{balanced, Constraints, GreedyPolicy, Weights};
use nodesel_topology::testbeds::heterogeneous_testbed;
use nodesel_topology::units::MBPS;

fn main() {
    let tb = heterogeneous_testbed();
    let mut topo = tb.topo.clone();
    // Load every 100 Mbps-attached machine slightly; the legacy suez pair
    // stays idle. Under per-link fractions the idle 10 Mbps pair looks
    // perfect; against a modern reference link it does not.
    for i in 1..=6 {
        topo.set_load_avg(tb.m(i), 1.2); // eff cpu 2.0/2.2 = 0.91
    }
    for i in 7..=16 {
        topo.set_load_avg(tb.m(i), 0.5); // eff cpu 0.67
    }

    println!("node inventory:");
    println!("  m-1..m-6 : speed 2.0, load 1.2 -> effective cpu 0.91, clean 100 Mbps links");
    println!("  m-7..m-16: speed 1.0, load 0.5 -> effective cpu 0.67, clean 100 Mbps links");
    println!("  m-17,m-18: speed 1.0, idle     -> effective cpu 1.00, legacy 10 Mbps links");
    println!();

    for (label, reference) in [
        ("per-link bw/maxbw (no reference)", None),
        ("reference = 100 Mbps Ethernet", Some(100.0 * MBPS)),
        ("reference = 155 Mbps ATM", Some(155.0 * MBPS)),
        ("reference = 10 Mbps legacy", Some(10.0 * MBPS)),
    ] {
        let sel = balanced(
            &topo,
            2,
            Weights::EQUAL,
            &Constraints::none(),
            reference,
            GreedyPolicy::Sweep,
        )
        .expect("feasible");
        let names: Vec<_> = sel
            .nodes
            .iter()
            .map(|&n| topo.node(n).name().to_string())
            .collect();
        println!(
            "{label:<35} -> {:?}\n{:<35}    min eff-cpu {:.2}, min bw {:.1} Mbps, fraction {:.3}, score {:.3}",
            names,
            "",
            sel.quality.min_cpu,
            sel.quality.min_bw / MBPS,
            sel.quality.min_bwfraction,
            sel.score
        );
    }
    println!();
    println!(
        "note: with bw/maxbw fractions the legacy 10 Mbps links look perfect when idle\n\
         (fraction 1.0); against a 100 Mbps reference they are only 0.10 — the paper's\n\
         point about needing a reference link to balance against computation."
    );
}
