//! Incremental re-selection vs. fresh solves: the snapshot/epoch seam's
//! speedup bench.
//!
//! A persistent [`Selector`](nodesel_core::Selector) primed on one epoch
//! answers the next epoch from the delta alone; the fresh path pays for
//! materializing the snapshot into an owned `Topology` plus a full
//! greedy solve. Measured across topology sizes for a small delta (a few
//! node loads moved — the steady-state case a resident placement service
//! sees) and a large one (half the nodes and links moved — which forces
//! the bandwidth-aware selectors back to a full re-solve). Parity is
//! asserted before anything is timed, a speedup table is printed, and a
//! machine-readable `BENCH_core.json` is written to the workspace root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nodesel_bench::conditioned_tree;
use nodesel_core::{select, selector_for, SelectionRequest};
use nodesel_topology::{Direction, NetDelta, NetMetrics, NetSnapshot};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const SIZES: [usize; 3] = [50, 200, 1000];

/// A churn step: `small` moves a handful of node loads (the steady-state
/// delta); otherwise half the node loads and half the directed links move.
fn churn_delta(snap: &NetSnapshot, small: bool) -> NetDelta {
    let topo = snap.structure();
    let mut delta = NetDelta::default();
    let computes: Vec<_> = topo.compute_nodes().collect();
    let touched = if small {
        5.min(computes.len())
    } else {
        computes.len() / 2
    };
    for &n in computes.iter().take(touched) {
        delta.nodes.push((n, snap.load_avg(n) * 0.9 + 0.05));
    }
    if !small {
        for e in topo.edge_ids().take(topo.link_count() / 2) {
            for dir in [Direction::AtoB, Direction::BtoA] {
                delta.links.push((e, dir, snap.used(e, dir) * 0.9));
            }
        }
    }
    delta
}

fn requests() -> Vec<(&'static str, SelectionRequest)> {
    vec![
        ("compute", SelectionRequest::compute(6)),
        ("balanced", SelectionRequest::balanced(6)),
    ]
}

/// Median wall time of one call, in seconds.
fn time_one(mut f: impl FnMut(), iters: usize) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn emit_summary() {
    eprintln!("\n=== incremental refresh vs fresh solve (median of 5) ===");
    eprintln!(
        "{:<10} {:>6} {:>7} {:>12} {:>12} {:>9}",
        "objective", "nodes", "delta", "fresh (s)", "refresh (s)", "speedup"
    );
    let mut rows = Vec::new();
    for nodes in SIZES {
        let (topo, _) = conditioned_tree(7, nodes);
        let base = NetSnapshot::capture(Arc::new(topo));
        for (name, request) in requests() {
            for (kind, small) in [("small", true), ("large", false)] {
                let delta = churn_delta(&base, small);
                let next = base.apply(&delta);
                let mut selector = selector_for(request.objective);
                selector.select(&base, &request).expect("solvable");
                // The speedup is only worth reporting on a parity-checked
                // result.
                assert_eq!(
                    selector.refresh(&next, &delta),
                    select(&next.to_topology(), &request),
                    "{name} n={nodes} {kind}"
                );
                let fresh = time_one(
                    || {
                        black_box(select(&next.to_topology(), &request)).ok();
                    },
                    5,
                );
                let refresh = time_one(
                    || {
                        black_box(selector.refresh(&next, &delta)).ok();
                    },
                    5,
                );
                eprintln!(
                    "{name:<10} {nodes:>6} {kind:>7} {fresh:>12.6} {refresh:>12.6} {:>8.1}x",
                    fresh / refresh
                );
                rows.push(serde_json::json!({
                    "objective": name,
                    "nodes": nodes,
                    "delta": kind,
                    "fresh_secs": fresh,
                    "refresh_secs": refresh,
                    "speedup": fresh / refresh,
                }));
            }
        }
    }
    let summary = serde_json::json!({
        "bench": "selector_refresh",
        "sizes": SIZES,
        "results": rows,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    match std::fs::write(path, format!("{:#}\n", summary)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench_refresh(c: &mut Criterion) {
    emit_summary();

    for (name, request) in requests() {
        let mut group = c.benchmark_group(format!("selector_refresh/{name}"));
        for nodes in SIZES {
            let (topo, _) = conditioned_tree(7, nodes);
            let base = NetSnapshot::capture(Arc::new(topo));
            if nodes >= 1000 {
                group.sample_size(20);
            }
            group.bench_with_input(BenchmarkId::new("fresh", nodes), &nodes, |b, _| {
                b.iter(|| black_box(select(&base.to_topology(), &request)).ok())
            });
            for (kind, small) in [("refresh_small", true), ("refresh_large", false)] {
                let delta = churn_delta(&base, small);
                let next = base.apply(&delta);
                let mut selector = selector_for(request.objective);
                selector.select(&base, &request).expect("solvable");
                group.bench_with_input(BenchmarkId::new(kind, nodes), &nodes, |b, _| {
                    b.iter(|| black_box(selector.refresh(&next, &delta)).ok())
                });
            }
        }
        group.finish();
    }

    // The objective-agnostic parts of the seam on their own: delta
    // application (structural sharing) vs full materialization.
    let mut group = c.benchmark_group("selector_refresh/snapshot");
    for nodes in SIZES {
        let (topo, _) = conditioned_tree(7, nodes);
        let base = NetSnapshot::capture(Arc::new(topo));
        let small = churn_delta(&base, true);
        group.bench_with_input(BenchmarkId::new("apply_small", nodes), &nodes, |b, _| {
            b.iter(|| black_box(base.apply(&small)))
        });
        group.bench_with_input(BenchmarkId::new("to_topology", nodes), &nodes, |b, _| {
            b.iter(|| black_box(base.to_topology()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refresh);
criterion_main!(benches);
