//! Canonical topology builders.
//!
//! These construct the network shapes used throughout the workspace: simple
//! teaching topologies (star, chain, dumbbell), parameterized cluster
//! fabrics, and seeded random trees for property tests and scaling benches.
//! The paper-specific networks (Figure 1, Figure 4) live in
//! [`crate::testbeds`].

use crate::units::MBPS;
use crate::{NodeId, Topology};
use rand::Rng;

/// A star: one switch in the middle, `leaves` compute nodes around it, all
/// links at `capacity` bits/s. Returns the topology and the leaf ids.
pub fn star(leaves: usize, capacity: f64) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let hub = t.add_network_node("hub");
    let ids = (0..leaves)
        .map(|i| {
            let id = t.add_compute_node(format!("n{i}"), 1.0);
            t.add_link(hub, id, capacity);
            id
        })
        .collect();
    (t, ids)
}

/// A chain of `len` compute nodes: `n0 - n1 - ... - n{len-1}`.
pub fn chain(len: usize, capacity: f64) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let ids: Vec<NodeId> = (0..len)
        .map(|i| t.add_compute_node(format!("n{i}"), 1.0))
        .collect();
    for w in ids.windows(2) {
        t.add_link(w[0], w[1], capacity);
    }
    (t, ids)
}

/// A dumbbell: two stars of `per_side` compute nodes joined by a single
/// `backbone` link — the classic shape where the shared middle link is the
/// contended resource.
pub fn dumbbell(per_side: usize, edge_capacity: f64, backbone: f64) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let left = t.add_network_node("sw-left");
    let right = t.add_network_node("sw-right");
    t.add_link(left, right, backbone);
    let mut ids = Vec::with_capacity(2 * per_side);
    for i in 0..per_side {
        let id = t.add_compute_node(format!("l{i}"), 1.0);
        t.add_link(left, id, edge_capacity);
        ids.push(id);
    }
    for i in 0..per_side {
        let id = t.add_compute_node(format!("r{i}"), 1.0);
        t.add_link(right, id, edge_capacity);
        ids.push(id);
    }
    (t, ids)
}

/// A multi-cluster fabric: `clusters` stars of `per_cluster` compute nodes,
/// whose switches hang off one core router. Edge links run at
/// `edge_capacity`, uplinks at `uplink_capacity`.
pub fn multi_cluster(
    clusters: usize,
    per_cluster: usize,
    edge_capacity: f64,
    uplink_capacity: f64,
) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let core = t.add_network_node("core");
    let mut ids = Vec::with_capacity(clusters * per_cluster);
    for c in 0..clusters {
        let sw = t.add_network_node(format!("sw{c}"));
        t.add_link(core, sw, uplink_capacity);
        for i in 0..per_cluster {
            let id = t.add_compute_node(format!("c{c}n{i}"), 1.0);
            t.add_link(sw, id, edge_capacity);
            ids.push(id);
        }
    }
    (t, ids)
}

/// A balanced tree of switches with compute nodes at the leaves.
///
/// `depth` levels of switches with `fanout` children each; the bottom level
/// of switches carries `fanout` compute leaves. `depth == 0` degenerates to
/// a star of `fanout` leaves.
pub fn switch_tree(depth: usize, fanout: usize, capacity: f64) -> (Topology, Vec<NodeId>) {
    let mut t = Topology::new();
    let root = t.add_network_node("root");
    let mut frontier = vec![root];
    for level in 0..depth {
        let mut next = Vec::new();
        for (pi, &p) in frontier.iter().enumerate() {
            for f in 0..fanout {
                let sw = t.add_network_node(format!("sw-{level}-{pi}-{f}"));
                t.add_link(p, sw, capacity);
                next.push(sw);
            }
        }
        frontier = next;
    }
    let mut leaves = Vec::new();
    for (pi, &p) in frontier.iter().enumerate() {
        for f in 0..fanout {
            let leaf = t.add_compute_node(format!("m-{pi}-{f}"), 1.0);
            t.add_link(p, leaf, capacity);
            leaves.push(leaf);
        }
    }
    (t, leaves)
}

/// A hierarchical fabric for two-level selection: `domains` star domains
/// of `hosts_per_domain` compute hosts each (host links at `host_cap`),
/// whose hub switches form a balanced binary tree of trunk links at
/// `trunk_cap` / `trunk_latency`. Each domain's hub is its only border
/// node, and the topology carries the matching persisted domain
/// assignment ([`Topology::domains`]), so
/// [`crate::hierarchy::Hierarchy::new`] picks the intended partition up
/// directly. Returns the topology and the host ids grouped by domain.
pub fn hierarchical(
    domains: usize,
    hosts_per_domain: usize,
    host_cap: f64,
    trunk_cap: f64,
    trunk_latency: f64,
) -> (Topology, Vec<Vec<NodeId>>) {
    assert!(domains > 0, "need at least one domain");
    let mut t = Topology::new();
    let mut hubs = Vec::with_capacity(domains);
    let mut hosts = Vec::with_capacity(domains);
    for d in 0..domains {
        let hub = t.add_network_node(format!("d{d}-sw"));
        if d > 0 {
            let parent = hubs[(d - 1) / 2];
            t.add_link_full(parent, hub, trunk_cap, trunk_cap, trunk_latency);
        }
        let members = (0..hosts_per_domain)
            .map(|i| {
                let h = t.add_compute_node(format!("d{d}-h{i}"), 1.0);
                t.add_link(hub, h, host_cap);
                h
            })
            .collect();
        hubs.push(hub);
        hosts.push(members);
    }
    let assignment: Vec<u16> = (0..t.node_count())
        .map(|i| (i / (hosts_per_domain + 1)) as u16)
        .collect();
    t.set_domains(assignment);
    (t, hosts)
}

/// A uniformly random tree over `compute` compute nodes and `network`
/// switches (random Prüfer-style attachment: each new node links to a
/// uniformly chosen earlier node). Node roles are shuffled so compute nodes
/// appear at arbitrary positions. All links at `capacity`.
///
/// Random trees are the workhorse of the property tests: the paper's §3.2
/// algorithms are exact on acyclic graphs, so any seeded tree gives a case
/// where greedy must equal exhaustive search.
pub fn random_tree<R: Rng>(
    rng: &mut R,
    compute: usize,
    network: usize,
    capacity: f64,
) -> (Topology, Vec<NodeId>) {
    assert!(compute + network >= 1);
    let total = compute + network;
    // Choose which positions are compute nodes.
    let mut roles = vec![false; total];
    let mut chosen = 0;
    while chosen < compute {
        let i = rng.random_range(0..total);
        if !roles[i] {
            roles[i] = true;
            chosen += 1;
        }
    }
    let mut t = Topology::new();
    let mut ids = Vec::with_capacity(total);
    let mut computes = Vec::with_capacity(compute);
    for (i, &is_compute) in roles.iter().enumerate() {
        let id = if is_compute {
            let id = t.add_compute_node(format!("m{i}"), 1.0);
            computes.push(id);
            id
        } else {
            t.add_network_node(format!("s{i}"))
        };
        if i > 0 {
            let parent = ids[rng.random_range(0..i)];
            t.add_link(parent, id, capacity);
        }
        ids.push(id);
    }
    (t, computes)
}

/// Assigns independent random load averages in `[0, max_load]` to every
/// compute node and random utilization in `[0, max_util_fraction]` of
/// capacity to every link direction. Used by benches and tests to produce
/// arbitrary-but-deterministic network conditions.
pub fn randomize_conditions<R: Rng>(
    topo: &mut Topology,
    rng: &mut R,
    max_load: f64,
    max_util_fraction: f64,
) {
    let compute: Vec<NodeId> = topo.compute_nodes().collect();
    for n in compute {
        topo.set_load_avg(n, rng.random_range(0.0..=max_load));
    }
    for e in topo.edge_ids().collect::<Vec<_>>() {
        for dir in [crate::Direction::AtoB, crate::Direction::BtoA] {
            let cap = topo.link(e).capacity(dir);
            topo.set_link_used(e, dir, cap * rng.random_range(0.0..=max_util_fraction));
        }
    }
}

/// A federation of `k` subnets: each subnet is a two-router backbone
/// (`s{s}-r0 — s{s}-r1` at 100 Mbps) with eight hosts attached
/// alternately to the two routers. With `trunk_latency` the subnets are
/// chained router-to-router into one connected federation whose
/// inter-subnet trunks run at 50 Mbps with that latency — the shape
/// where cross-subnet placements contend on a scarce shared link.
/// Without it the subnets stay disconnected (`k` components). Returns
/// the topology and each subnet's host list.
pub fn federation(k: usize, trunk_latency: Option<f64>) -> (Topology, Vec<Vec<NodeId>>) {
    let mut topo = Topology::new();
    let mut subnets = Vec::new();
    let mut routers = Vec::new();
    for s in 0..k {
        let r0 = topo.add_network_node(format!("s{s}-r0"));
        let r1 = topo.add_network_node(format!("s{s}-r1"));
        topo.add_link(r0, r1, 100.0 * MBPS);
        let mut hosts = Vec::new();
        for h in 0..8 {
            let n = topo.add_compute_node(format!("s{s}-h{h}"), 1.0);
            topo.add_link(n, if h % 2 == 0 { r0 } else { r1 }, 100.0 * MBPS);
            hosts.push(n);
        }
        routers.push((r0, r1));
        subnets.push(hosts);
    }
    if let Some(lat) = trunk_latency {
        for w in routers.windows(2) {
            topo.add_link_full(w[0].1, w[1].0, 50.0 * MBPS, 50.0 * MBPS, lat);
        }
    }
    (topo, subnets)
}

/// Default capacity used by examples: 100 Mbps Ethernet.
pub const DEFAULT_CAPACITY: f64 = 100.0 * MBPS;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn star_shape() {
        let (t, leaves) = star(5, DEFAULT_CAPACITY);
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.link_count(), 5);
        assert_eq!(t.compute_node_count(), 5);
        assert_eq!(leaves.len(), 5);
        assert!(t.is_connected() && t.is_acyclic());
    }

    #[test]
    fn chain_shape() {
        let (t, ids) = chain(4, DEFAULT_CAPACITY);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.degree(ids[0]), 1);
        assert_eq!(t.degree(ids[1]), 2);
        assert!(t.is_acyclic());
    }

    #[test]
    fn dumbbell_shape() {
        let (t, ids) = dumbbell(3, DEFAULT_CAPACITY, 10.0 * MBPS);
        assert_eq!(ids.len(), 6);
        assert_eq!(t.node_count(), 8);
        assert_eq!(t.link_count(), 7);
        assert!(t.is_connected() && t.is_acyclic());
        // Cross-side bottleneck is the backbone.
        let r = t.routes();
        assert_eq!(r.bottleneck_bw(ids[0], ids[3]).unwrap(), 10.0 * MBPS);
        assert_eq!(r.bottleneck_bw(ids[0], ids[1]).unwrap(), DEFAULT_CAPACITY);
    }

    #[test]
    fn multi_cluster_shape() {
        let (t, ids) = multi_cluster(3, 4, DEFAULT_CAPACITY, 2.0 * DEFAULT_CAPACITY);
        assert_eq!(ids.len(), 12);
        assert_eq!(t.node_count(), 1 + 3 + 12);
        assert!(t.is_connected() && t.is_acyclic());
    }

    #[test]
    fn switch_tree_shape() {
        let (t, leaves) = switch_tree(2, 2, DEFAULT_CAPACITY);
        // 1 root + 2 + 4 switches, 8 leaves.
        assert_eq!(leaves.len(), 8);
        assert_eq!(t.node_count(), 15);
        assert!(t.is_connected() && t.is_acyclic());
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let (t, computes) = random_tree(&mut rng, 6, 4, DEFAULT_CAPACITY);
            assert_eq!(t.node_count(), 10);
            assert_eq!(t.link_count(), 9);
            assert_eq!(computes.len(), 6);
            assert!(t.is_connected());
            assert!(t.is_acyclic());
        }
    }

    #[test]
    fn random_tree_deterministic_per_seed() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(42);
            let (t, _) = random_tree(&mut rng, 5, 5, DEFAULT_CAPACITY);
            (0..t.node_count())
                .map(|i| t.node(crate::NodeId::from_index(i)).name().to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn randomize_conditions_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let (mut t, _) = star(6, DEFAULT_CAPACITY);
        randomize_conditions(&mut t, &mut rng, 4.0, 0.9);
        for n in t.compute_nodes() {
            let l = t.node(n).load_avg();
            assert!((0.0..=4.0).contains(&l));
        }
        for e in t.edge_ids() {
            assert!(t.link(e).bwfactor() >= 0.1 - 1e-9);
        }
    }
}

/// A ring of `n` compute nodes (the simplest cyclic topology): static
/// routing fixes one of the two possible paths per pair, exercising the
/// §3.3 "cycles in network topology" case.
pub fn ring(n: usize, capacity: f64) -> (Topology, Vec<NodeId>) {
    assert!(n >= 3, "a ring needs at least three nodes");
    let mut t = Topology::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| t.add_compute_node(format!("n{i}"), 1.0))
        .collect();
    for i in 0..n {
        t.add_link(ids[i], ids[(i + 1) % n], capacity);
    }
    (t, ids)
}

/// A `rows × cols` grid of compute nodes with nearest-neighbour links —
/// a richer cyclic topology with many alternative paths per pair.
pub fn grid(rows: usize, cols: usize, capacity: f64) -> (Topology, Vec<NodeId>) {
    assert!(rows >= 1 && cols >= 1);
    let mut t = Topology::new();
    let ids: Vec<NodeId> = (0..rows * cols)
        .map(|i| t.add_compute_node(format!("g{}-{}", i / cols, i % cols), 1.0))
        .collect();
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                t.add_link(ids[i], ids[i + 1], capacity);
            }
            if r + 1 < rows {
                t.add_link(ids[i], ids[i + cols], capacity);
            }
        }
    }
    (t, ids)
}

#[cfg(test)]
mod cyclic_tests {
    use super::*;
    use crate::metrics::metrics;

    #[test]
    fn ring_is_cyclic_and_routes_shortest() {
        let (t, ids) = ring(6, DEFAULT_CAPACITY);
        assert!(t.is_connected());
        assert!(!t.is_acyclic());
        let r = t.routes();
        // Opposite nodes are 3 hops apart either way; the route is fixed.
        let p = r.path(ids[0], ids[3]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(r.path(ids[0], ids[3]).unwrap(), p);
        // Adjacent nodes route directly.
        assert_eq!(r.path(ids[0], ids[1]).unwrap().len(), 1);
    }

    #[test]
    fn grid_shape_and_diameter() {
        let (t, ids) = grid(3, 4, DEFAULT_CAPACITY);
        assert_eq!(ids.len(), 12);
        assert_eq!(t.link_count(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(!t.is_acyclic());
        let m = metrics(&t);
        // Manhattan diameter: (3-1) + (4-1) = 5.
        assert_eq!(m.diameter_hops, Some(5));
    }

    #[test]
    fn degenerate_grid_is_a_chain() {
        let (t, _) = grid(1, 5, DEFAULT_CAPACITY);
        assert!(t.is_acyclic());
        assert_eq!(t.link_count(), 4);
    }
}
