//! Shared helpers for the table/figure benches.
//!
//! Each bench in `benches/` regenerates one artifact of the paper's
//! evaluation (printed once, before measurement) and then measures the
//! computation that produces it, so `cargo bench` doubles as the
//! reproduction harness. The helpers here build the standard randomized
//! inputs the benches sweep over.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use nodesel_topology::builders::{random_tree, randomize_conditions};
use nodesel_topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded random tree (half compute, half network nodes) with random
/// load and traffic conditions — the standard input for the algorithm
/// benches.
pub fn conditioned_tree(seed: u64, nodes: usize) -> (Topology, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let computes = nodes / 2;
    let (mut topo, ids) = random_tree(&mut rng, computes, nodes - computes, 1e8);
    randomize_conditions(&mut topo, &mut rng, 3.0, 0.9);
    (topo, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditioned_tree_is_connected_and_seeded() {
        let (a, ids) = conditioned_tree(5, 40);
        assert_eq!(a.node_count(), 40);
        assert_eq!(ids.len(), 20);
        assert!(a.is_connected());
        let (b, _) = conditioned_tree(5, 40);
        // Same seed, same conditions.
        for n in a.compute_nodes() {
            assert_eq!(a.node(n).load_avg(), b.node(n).load_avg());
        }
    }
}
