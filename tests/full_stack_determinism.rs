//! Full-stack determinism: an entire Table 1 cell — simulator, generators,
//! measurement, selection, application — is a pure function of its seed.

use nodesel_apps::{fft::fft_program, AppModel};
use nodesel_experiments::{run_trial, run_trials, Condition, Strategy, Testbed, TrialConfig};

#[test]
fn identical_seeds_give_identical_trials() {
    let tb = Testbed::cmu();
    let app = AppModel::Phased(fft_program(8));
    let cfg = TrialConfig::default();
    for strategy in [Strategy::Random, Strategy::Automatic, Strategy::Oracle] {
        for condition in [Condition::Load, Condition::Traffic, Condition::Both] {
            let a = run_trial(&tb, &app, 4, strategy, condition, &cfg, 1234);
            let b = run_trial(&tb, &app, 4, strategy, condition, &cfg, 1234);
            assert_eq!(a.elapsed, b.elapsed, "{strategy:?}/{condition:?}");
            assert_eq!(a.nodes, b.nodes, "{strategy:?}/{condition:?}");
        }
    }
}

#[test]
fn different_seeds_differ() {
    let tb = Testbed::cmu();
    let app = AppModel::Phased(fft_program(8));
    let cfg = TrialConfig::default();
    let a = run_trial(&tb, &app, 4, Strategy::Random, Condition::Both, &cfg, 1);
    let b = run_trial(&tb, &app, 4, Strategy::Random, Condition::Both, &cfg, 2);
    assert!(a.elapsed != b.elapsed || a.nodes != b.nodes);
}

#[test]
fn parallel_fanout_matches_itself() {
    // run_trials spreads repetitions across threads; the result must be
    // independent of the thread schedule.
    let tb = Testbed::cmu();
    let app = AppModel::Phased(fft_program(4));
    let cfg = TrialConfig::default();
    let a = run_trials(
        &tb,
        &app,
        4,
        Strategy::Automatic,
        Condition::Both,
        &cfg,
        9,
        8,
    );
    let b = run_trials(
        &tb,
        &app,
        4,
        Strategy::Automatic,
        Condition::Both,
        &cfg,
        9,
        8,
    );
    assert_eq!(a, b);
}
