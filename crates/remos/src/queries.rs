//! The two-level Remos query API: flow queries and logical topology.

use crate::collector::{install, install_scoped, CollectorConfig, Samples};
use crate::estimator::Estimator;
use nodesel_simnet::{DriverId, Sim, SimTime};
use nodesel_topology::{Direction, NetMetrics, NetSnapshot, NodeId, Topology, TopologyError};
use std::cell::Cell;
use std::rc::Rc;

/// Counters of API usage: "the cost that an application pays ... is low
/// and directly related to the depth and frequency of its requests for
/// network information" (paper §2.2). These counters expose that
/// frequency so experiments can report the measurement bill of each
/// strategy (e.g. tomography's O(n²) pair probes vs one topology query).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Logical-topology queries served.
    pub topology_queries: u64,
    /// Flow-query calls served (independent and sharing-aware).
    pub flow_queries: u64,
    /// Total node pairs evaluated across all flow queries.
    pub pairs_queried: u64,
    /// Host-query calls served.
    pub host_queries: u64,
    /// [`Remos::snapshot`] calls that returned the epoch this handle had
    /// already seen — the caller's cached selection state is still valid.
    pub snapshot_hits: u64,
    /// [`Remos::snapshot`] calls that returned a new epoch.
    pub snapshot_misses: u64,
    /// Cumulative node entries across the collector's published deltas,
    /// as of the last [`Remos::snapshot`] call.
    pub delta_node_entries: u64,
    /// Cumulative directed-link entries across the collector's published
    /// deltas, as of the last [`Remos::snapshot`] call.
    pub delta_link_entries: u64,
}

/// Result of a flow query for one node pair.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowInfo {
    /// Flow source.
    pub src: NodeId,
    /// Flow destination.
    pub dst: NodeId,
    /// Estimated available bandwidth along the fixed route, bits/s.
    pub available_bw: f64,
    /// One-way latency along the route, seconds.
    pub latency: f64,
    /// Number of links on the route.
    pub hops: usize,
}

/// Result of a host query for one compute node.
#[derive(Debug, Clone, PartialEq)]
pub struct HostInfo {
    /// The node.
    pub node: NodeId,
    /// Estimated load average.
    pub load_avg: f64,
    /// Available CPU fraction `1/(1+loadavg)`.
    pub cpu: f64,
    /// Relative speed of the node.
    pub speed: f64,
}

/// The Remos query interface.
///
/// A `Remos` handle addresses the sample store fed by the periodic
/// collector, which lives *inside* the simulator (so it is cloned by
/// [`Sim::fork`] and queries take the simulator they are asked against —
/// one handle works on the original and on every fork). Queries are
/// answered purely from sampled history — the interface never peeks at
/// simulator ground truth — which reproduces the defining property of the
/// real system: applications see *measurements*, with their period,
/// staleness and noise.
///
/// The two abstraction levels of the paper's API are
/// [`Remos::snapshot`] (a functional snapshot of the network, annotated
/// with measured conditions) and [`Remos::flow_query`] (end-to-end
/// available bandwidth for specific node pairs).
#[derive(Clone)]
pub struct Remos {
    driver: DriverId,
    stats: Rc<Cell<QueryStats>>,
    /// Epoch of the last snapshot served through this handle (shared
    /// across clones), for the hit/miss accounting.
    seen_epoch: Rc<Cell<Option<u64>>>,
}

impl Remos {
    /// Installs the SNMP-style collector into a simulator and returns the
    /// query handle.
    pub fn install(sim: &mut Sim, config: CollectorConfig) -> Remos {
        Remos {
            driver: install(sim, config),
            stats: Rc::new(Cell::new(QueryStats::default())),
            seen_epoch: Rc::new(Cell::new(None)),
        }
    }

    /// Installs a collector that samples only `scope`'s compute nodes and
    /// the links internal to `scope`, homed at `home` (see
    /// [`Sim::install_driver_at`]). When `scope` covers a whole partition
    /// domain, the collector reads no foreign state and can run inside a
    /// single shard of the parallel engine. Queries outside the scope
    /// answer from the unmeasured baseline.
    pub fn install_scoped(
        sim: &mut Sim,
        home: NodeId,
        scope: &[NodeId],
        config: CollectorConfig,
    ) -> Remos {
        Remos {
            driver: install_scoped(sim, home, scope, config),
            stats: Rc::new(Cell::new(QueryStats::default())),
            seen_epoch: Rc::new(Cell::new(None)),
        }
    }

    /// API-usage counters accumulated by this handle (shared across
    /// clones).
    pub fn query_stats(&self) -> QueryStats {
        self.stats.get()
    }

    fn bump(&self, f: impl FnOnce(&mut QueryStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    fn samples<'a>(&self, sim: &'a Sim) -> &'a Samples {
        sim.driver::<Samples>(self.driver)
    }

    /// Number of collection rounds completed so far.
    pub fn sample_count(&self, sim: &Sim) -> u64 {
        self.samples(sim).sample_count
    }

    /// Time of the most recent sample, if any.
    pub fn last_sample_time(&self, sim: &Sim) -> Option<SimTime> {
        self.samples(sim).last_sample
    }

    /// The collector's published confidence: the minimum
    /// staleness-confidence across the available entities of the
    /// snapshot it currently publishes
    /// ([`NetMetrics::min_confidence`]). `1.0` while every reachable
    /// entity samples cleanly; decays geometrically as losses accumulate.
    /// A placement service consuming the snapshot stream feeds this
    /// scalar to its degraded-mode policy ("how much should I trust what
    /// I am serving"). Free: reads the published snapshot, counts no
    /// query.
    pub fn confidence(&self, sim: &Sim) -> f64 {
        self.samples(sim).snap.min_confidence()
    }

    /// The collector-maintained logical topology as a versioned
    /// [`NetSnapshot`], annotated under the collector's configured
    /// estimator ([`CollectorConfig::estimator`]).
    ///
    /// The collector re-publishes the snapshot after every sample that
    /// changed any estimate, so the epoch advances **only on change**:
    /// two calls returning the same [`NetSnapshot::epoch`] are guaranteed
    /// bit-identical, and [`NetSnapshot::diff`] against a previously
    /// returned snapshot yields exactly the churn in between — the input
    /// an incremental selector's `refresh` needs. Returning the snapshot
    /// is a handful of `Arc` bumps; nothing is copied.
    ///
    /// Counts as one topology query; additionally recorded as a
    /// [`QueryStats::snapshot_hits`] when this handle had already seen
    /// the returned epoch, else a miss.
    pub fn snapshot(&self, sim: &Sim) -> NetSnapshot {
        let st = self.samples(sim);
        let snap = st.snap.clone();
        let hit = self.seen_epoch.get() == Some(snap.epoch());
        self.seen_epoch.set(Some(snap.epoch()));
        let (dn, dl) = (st.delta_node_entries, st.delta_link_entries);
        self.bump(|s| {
            s.topology_queries += 1;
            if hit {
                s.snapshot_hits += 1;
            } else {
                s.snapshot_misses += 1;
            }
            s.delta_node_entries = dn;
            s.delta_link_entries = dl;
        });
        snap
    }

    /// Like [`Remos::snapshot`], but returns `None` when the collector
    /// has published nothing since the epoch this handle last saw — the
    /// caller's cached selection state (and any service cache keyed on
    /// the epoch) is still valid and there is nothing to diff. Counts as
    /// one topology query and a [`QueryStats::snapshot_hits`]; a `Some`
    /// return carries the accounting of the underlying [`Remos::snapshot`]
    /// call (a miss).
    pub fn snapshot_if_new(&self, sim: &Sim) -> Option<NetSnapshot> {
        let st = self.samples(sim);
        if self.seen_epoch.get() == Some(st.snap.epoch()) {
            let (dn, dl) = (st.delta_node_entries, st.delta_link_entries);
            self.bump(|s| {
                s.topology_queries += 1;
                s.snapshot_hits += 1;
                s.delta_node_entries = dn;
                s.delta_link_entries = dl;
            });
            return None;
        }
        Some(self.snapshot(sim))
    }

    /// Owned estimated topology under an explicit estimator: the shared
    /// materialization behind the flow queries, which re-estimate under
    /// the caller's [`Estimator`] rather than the collector's configured
    /// one. External consumers use [`Remos::snapshot`] (and
    /// `NetSnapshot::to_topology` when an owned graph is needed).
    fn estimated_topology(&self, sim: &Sim, estimator: Estimator) -> Topology {
        self.bump(|s| s.topology_queries += 1);
        let st = self.samples(sim);
        let mut topo = (*st.base).clone();
        for &id in st.compute_nodes() {
            let load = estimator.estimate(&st.host[id.index()]).max(0.0);
            topo.set_load_avg(id, load);
        }
        for (slot, &(e, dir)) in st.link_slots().iter().enumerate() {
            let cap = topo.link(e).capacity(dir);
            let used = estimator.estimate(&st.link[slot]).clamp(0.0, cap);
            topo.set_link_used(e, dir, used);
        }
        topo
    }

    /// Flow queries: estimated available bandwidth and latency between each
    /// requested pair, over the network's fixed routes.
    pub fn flow_query(
        &self,
        sim: &Sim,
        pairs: &[(NodeId, NodeId)],
        estimator: Estimator,
    ) -> Result<Vec<FlowInfo>, TopologyError> {
        self.bump(|s| {
            s.flow_queries += 1;
            s.pairs_queried += pairs.len() as u64;
        });
        let topo = self.estimated_topology(sim, estimator);
        let routes = topo.routes();
        pairs
            .iter()
            .map(|&(src, dst)| {
                let path = routes.path(src, dst)?;
                Ok(FlowInfo {
                    src,
                    dst,
                    available_bw: routes.available_bandwidth(src, dst)?,
                    latency: routes.latency(src, dst)?,
                    hops: path.len(),
                })
            })
            .collect()
    }

    /// Sharing-aware flow queries (paper §2.2: flow queries "account for
    /// sharing of network links by multiple flows").
    ///
    /// Where [`Remos::flow_query`] reports each pair's available bandwidth
    /// independently, this predicts the max-min fair rate each requested
    /// flow would obtain if **all of them ran simultaneously**, competing
    /// for whatever capacity the measured background traffic has left.
    /// This is what an application planning a communication phase (e.g. an
    /// all-to-all) should ask for.
    pub fn flow_query_shared(
        &self,
        sim: &Sim,
        pairs: &[(NodeId, NodeId)],
        estimator: Estimator,
    ) -> Result<Vec<FlowInfo>, TopologyError> {
        self.bump(|s| {
            s.flow_queries += 1;
            s.pairs_queried += pairs.len() as u64;
        });
        let topo = self.estimated_topology(sim, estimator);
        let routes = topo.routes();
        // Residual capacity per directed link after measured background
        // traffic.
        let mut capacity = vec![0.0; topo.link_count() * 2];
        for e in topo.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                capacity[nodesel_topology::maxmin::dir_slot(e, dir)] = topo.link(e).available(dir);
            }
        }
        let mut paths = Vec::with_capacity(pairs.len());
        let mut flow_slots = Vec::with_capacity(pairs.len());
        for &(src, dst) in pairs {
            let path = routes.path(src, dst)?;
            flow_slots.push(
                path.hops
                    .iter()
                    .map(|&(e, d)| nodesel_topology::maxmin::dir_slot(e, d))
                    .collect::<Vec<_>>(),
            );
            paths.push(path);
        }
        let rates = nodesel_topology::maxmin::max_min_allocate(&capacity, &flow_slots);
        pairs
            .iter()
            .zip(paths.iter().zip(rates))
            .map(|(&(src, dst), (path, rate))| {
                Ok(FlowInfo {
                    src,
                    dst,
                    available_bw: rate,
                    latency: routes.latency(src, dst)?,
                    hops: path.len(),
                })
            })
            .collect()
    }

    /// Host queries: estimated load and available CPU for each node.
    /// Errors on network nodes.
    pub fn host_query(
        &self,
        sim: &Sim,
        nodes: &[NodeId],
        estimator: Estimator,
    ) -> Result<Vec<HostInfo>, TopologyError> {
        self.bump(|s| s.host_queries += 1);
        let st = self.samples(sim);
        nodes
            .iter()
            .map(|&node| {
                let n = st.base.node(node);
                if !n.is_compute() {
                    return Err(TopologyError::NotComputeNode(node));
                }
                let load_avg = estimator.estimate(&st.host[node.index()]).max(0.0);
                Ok(HostInfo {
                    node,
                    load_avg,
                    cpu: 1.0 / (1.0 + load_avg),
                    speed: n.speed(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::{chain, star};
    use nodesel_topology::units::MBPS;
    use nodesel_topology::NetMetrics;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn snapshot_matches_estimated_topology_bitwise() {
        // The flow queries re-estimate through the private owned-topology
        // materialization; it must agree bitwise with the published
        // snapshot under the collector's estimator.
        let (topo, ids) = chain(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        sim.start_compute(ids[1], 1e9, |_| {});
        sim.start_transfer(ids[0], ids[2], 1e18, |_| {});
        sim.run_until(secs(600));
        let snap = remos.snapshot(&sim);
        let queried = remos.estimated_topology(&sim, Estimator::Latest);
        for n in queried.node_ids() {
            assert_eq!(
                snap.load_avg(n).to_bits(),
                queried.node(n).load_avg().to_bits()
            );
        }
        for e in queried.edge_ids() {
            for dir in [Direction::AtoB, Direction::BtoA] {
                assert_eq!(
                    snap.used(e, dir).to_bits(),
                    queried.link(e).used(dir).to_bits()
                );
            }
        }
        assert!(snap.epoch() > 0, "churn must have advanced the epoch");
    }

    #[test]
    fn snapshot_epoch_advances_only_on_change() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        // An idle network samples forever without changing any estimate.
        sim.run_until(secs(300));
        let a = remos.snapshot(&sim);
        assert_eq!(a.epoch(), 0);
        sim.run_until(secs(600));
        let b = remos.snapshot(&sim);
        assert_eq!(b.epoch(), 0);
        assert!(a.same_structure(&b));
        // Load appears: the next samples publish new epochs.
        sim.start_compute(ids[0], 1e9, |_| {});
        sim.run_until(secs(900));
        let c = remos.snapshot(&sim);
        assert!(c.epoch() > 0);
        assert!(a.same_structure(&c));
        let delta = c.diff(&a);
        assert!(delta.nodes.iter().any(|&(n, _)| n == ids[0]));
        let stats = remos.query_stats();
        assert_eq!(stats.snapshot_hits, 1); // the second idle call
        assert_eq!(stats.snapshot_misses, 2);
        assert!(stats.delta_node_entries > 0);
    }

    #[test]
    fn snapshot_if_new_skips_seen_epochs() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        sim.run_until(secs(300));
        let first = remos
            .snapshot_if_new(&sim)
            .expect("a fresh handle has seen no epoch");
        // Nothing republished: the handle reports "still current".
        assert!(remos.snapshot_if_new(&sim).is_none());
        assert!(remos.snapshot_if_new(&sim).is_none());
        // Churn publishes a new epoch; the next call returns it.
        sim.start_compute(ids[0], 1e9, |_| {});
        sim.run_until(secs(600));
        let next = remos.snapshot_if_new(&sim).expect("epoch advanced");
        assert!(next.epoch() > first.epoch());
        assert!(next.same_structure(&first));
        let stats = remos.query_stats();
        assert_eq!(stats.topology_queries, 4);
        assert_eq!(stats.snapshot_hits, 2);
        assert_eq!(stats.snapshot_misses, 2);
    }

    #[test]
    fn snapshot_survives_forks() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        sim.start_compute_detached(ids[0], 1e9);
        sim.run_until(secs(120));
        let mut fork = sim.fork();
        fork.run_until(secs(600));
        sim.run_until(secs(600));
        let (a, b) = (remos.snapshot(&sim), remos.snapshot(&fork));
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.load_values(), b.load_values());
    }

    #[test]
    fn fresh_monitor_reports_unloaded_network() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        let t = remos.snapshot(&sim).to_topology();
        assert_eq!(t.node(ids[0]).cpu(), 1.0);
        for e in t.edge_ids() {
            assert_eq!(t.link(e).bwfactor(), 1.0);
        }
        assert_eq!(remos.sample_count(&sim), 0);
    }

    #[test]
    fn topology_reflects_measured_load_and_traffic() {
        let (topo, ids) = chain(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        sim.start_compute(ids[1], 1e9, |_| {});
        sim.start_transfer(ids[0], ids[2], 1e18, |_| {});
        sim.run_until(secs(600));
        let t = remos.snapshot(&sim).to_topology();
        assert!(t.node(ids[1]).load_avg() > 0.9);
        assert!(t.node(ids[0]).load_avg() < 0.05);
        // Both chain links are saturated in the forward direction.
        for e in t.edge_ids() {
            assert!(t.link(e).bw() < MBPS, "bw {}", t.link(e).bw());
        }
    }

    #[test]
    fn flow_query_reports_available_bandwidth_and_latency() {
        let mut topo = Topology::new();
        let a = topo.add_compute_node("a", 1.0);
        let s = topo.add_network_node("s");
        let b = topo.add_compute_node("b", 1.0);
        topo.add_link_full(a, s, 100.0 * MBPS, 100.0 * MBPS, 0.001);
        topo.add_link_full(s, b, 10.0 * MBPS, 10.0 * MBPS, 0.002);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        sim.run_until(secs(30));
        let infos = remos
            .flow_query(&sim, &[(a, b), (b, a)], Estimator::Latest)
            .unwrap();
        assert_eq!(infos[0].available_bw, 10.0 * MBPS);
        assert_eq!(infos[0].hops, 2);
        assert!((infos[0].latency - 0.003).abs() < 1e-12);
        assert_eq!(infos[1].available_bw, 10.0 * MBPS);
    }

    #[test]
    fn measurements_are_stale_not_instant() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(
            &mut sim,
            CollectorConfig {
                period: 10.0,
                ..CollectorConfig::default()
            },
        );
        // Let a couple of idle samples land, then start the job.
        sim.run_until(secs(25));
        sim.start_compute(ids[0], 1e9, |_| {});
        sim.run_until(secs(29));
        // True load is ramping up but the last sample (t=20) predates it.
        assert_eq!(remos.snapshot(&sim).load_avg(ids[0]), 0.0);
        sim.run_until(secs(300));
        assert!(remos.snapshot(&sim).load_avg(ids[0]) > 0.9);
    }

    #[test]
    fn estimators_disagree_on_transients() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        // Load for the first 150s only, then idle.
        sim.start_compute(ids[0], 150.0, |_| {});
        sim.run_until(secs(175));
        let latest = remos
            .host_query(&sim, &[ids[0]], Estimator::Latest)
            .unwrap()[0]
            .load_avg;
        let mean = remos
            .host_query(&sim, &[ids[0]], Estimator::WindowMean)
            .unwrap()[0]
            .load_avg;
        // The window mean still remembers the loaded period.
        assert!(mean > latest);
    }

    #[test]
    fn host_query_rejects_network_nodes() {
        let (topo, _) = star(2, 100.0 * MBPS);
        let hub = topo.node_by_name("hub").unwrap();
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        assert!(matches!(
            remos.host_query(&sim, &[hub], Estimator::Latest),
            Err(TopologyError::NotComputeNode(_))
        ));
    }

    #[test]
    fn flow_query_errors_on_disconnected_pair() {
        let mut topo = Topology::new();
        let a = topo.add_compute_node("a", 1.0);
        let b = topo.add_compute_node("b", 1.0);
        let mut sim = Sim::new(topo.clone());
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        assert!(remos
            .flow_query(&sim, &[(a, b)], Estimator::Latest)
            .is_err());
    }
    #[test]
    fn shared_flow_query_divides_a_common_bottleneck() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        sim.run_until(secs(30));
        // Two flows converging on n2: independently each sees 100 Mbps,
        // together they split n2's access link 50/50.
        let pairs = [(ids[0], ids[2]), (ids[1], ids[2])];
        let indep = remos.flow_query(&sim, &pairs, Estimator::Latest).unwrap();
        assert_eq!(indep[0].available_bw, 100.0 * MBPS);
        assert_eq!(indep[1].available_bw, 100.0 * MBPS);
        let shared = remos
            .flow_query_shared(&sim, &pairs, Estimator::Latest)
            .unwrap();
        assert_eq!(shared[0].available_bw, 50.0 * MBPS);
        assert_eq!(shared[1].available_bw, 50.0 * MBPS);
    }

    #[test]
    fn shared_flow_query_respects_background_traffic() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        // Persistent background flow into n2 consumes ~100 Mbps of its
        // access link... shared with whatever else runs, but the *measured*
        // utilization is what the prediction subtracts.
        sim.start_transfer(ids[0], ids[2], 1e18, |_| {});
        sim.run_until(secs(60));
        let shared = remos
            .flow_query_shared(&sim, &[(ids[1], ids[2])], Estimator::Latest)
            .unwrap();
        // The link is measured as saturated, so the predicted residual
        // share is near zero.
        assert!(
            shared[0].available_bw < 5.0 * MBPS,
            "{}",
            shared[0].available_bw
        );
    }

    #[test]
    fn shared_flow_query_disjoint_paths_unaffected() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        sim.run_until(secs(10));
        // Disjoint pairs keep full rate even when queried together.
        let shared = remos
            .flow_query_shared(
                &sim,
                &[(ids[0], ids[1]), (ids[2], ids[3])],
                Estimator::Latest,
            )
            .unwrap();
        assert_eq!(shared[0].available_bw, 100.0 * MBPS);
        assert_eq!(shared[1].available_bw, 100.0 * MBPS);
    }
    #[test]
    fn query_stats_count_usage() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let remos = Remos::install(&mut sim, CollectorConfig::default());
        assert_eq!(remos.query_stats(), QueryStats::default());
        let _ = remos.snapshot(&sim);
        let _ = remos.flow_query(
            &sim,
            &[(ids[0], ids[1]), (ids[1], ids[2])],
            Estimator::Latest,
        );
        let _ = remos.host_query(&sim, &ids, Estimator::Latest);
        let stats = remos.query_stats();
        // flow_query internally materializes one estimated topology too.
        assert_eq!(stats.topology_queries, 2);
        assert_eq!(stats.flow_queries, 1);
        assert_eq!(stats.pairs_queried, 2);
        assert_eq!(stats.host_queries, 1);
        // Clones share the counters (and the seen epoch: the re-snapshot
        // of an unchanged network is a hit).
        let clone = remos.clone();
        let _ = clone.snapshot(&sim);
        let stats = remos.query_stats();
        assert_eq!(stats.topology_queries, 3);
        assert_eq!(stats.snapshot_hits, 1);
        assert_eq!(stats.snapshot_misses, 1);
    }
}
