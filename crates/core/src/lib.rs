//! Node-selection algorithms for high performance applications on shared
//! networks.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Automatic Node Selection for High Performance Applications on
//! Networks"* (Subhlok, Lieu, Lowekamp — PPoPP '99): given a logical
//! network topology annotated with measured conditions (from
//! `nodesel-remos`) and an application's requirements, choose the set of
//! compute nodes on which the application will run fastest.
//!
//! # The three fundamental algorithms (§3.2)
//!
//! * [`max_compute`] — the `m` nodes with the highest available CPU
//!   fraction `cpu = 1/(1 + loadavg)`;
//! * [`max_bandwidth`] — Figure 2: maximize the minimum available
//!   bandwidth between any pair of selected nodes by deleting
//!   minimum-bandwidth edges while enough connected compute nodes survive;
//! * [`balanced`] — Figure 3: maximize
//!   `min(min fractional cpu, min fractional bandwidth)` greedily.
//!
//! # Generalizations (§3.3)
//!
//! All supported through [`SelectionRequest`]:
//! priority [`Weights`] between computation and communication; fixed
//! [`Constraints`] (absolute bandwidth floors, CPU floors, required and
//! allowed node sets); heterogeneous node speeds (via
//! [`nodesel_topology::Node::speed`]) and a reference link bandwidth for
//! heterogeneous networks; directed/bidirectional links (handled by the
//! topology layer); and dynamic [`migration`] advice that discounts the
//! application's own footprint.
//!
//! # Availability
//!
//! Selection consumes the health annotations carried by
//! [`nodesel_topology::NetMetrics`]: nodes reported down are never
//! eligible, links reported down are removed from the working view before
//! any bandwidth reasoning, confidence decay on stale measurements
//! penalizes candidates with aging data, and
//! [`Constraints::max_staleness`] excludes them outright. The
//! [`supervisor`] module layers a re-selection policy (failure-triggered
//! refresh, hysteresis, exponential backoff) on top for long-running
//! applications on faulty networks.
//!
//! # Ground truth
//!
//! [`exhaustive_select`] provides a brute-force optimum for test-sized
//! graphs; the property tests assert the greedy algorithms (with
//! [`GreedyPolicy::Sweep`]) match it exactly on acyclic topologies, where
//! the paper's arguments are tight.
//!
//! # Performance
//!
//! The public greedy entry points run near-linear sorted-edge/union-find
//! engines instead of the paper's literal O(E²) loops; the literal loops
//! survive as [`max_bandwidth_reference`] and [`balanced_reference`] and
//! are asserted byte-identical in debug builds and in the
//! `fastpath_parity` property tests. [`exhaustive_select`] prunes and
//! parallelizes the subset search, with
//! [`exhaustive_select_reference`] as the unpruned baseline.
//!
//! For a stream of measurement epochs, the [`selector`] module offers
//! persistent [`Selector`]s whose `refresh` replays the recorded solve
//! skeleton against a [`nodesel_topology::NetDelta`] instead of
//! re-solving from scratch, bit-identical to a fresh solve.
//!
//! # Example
//!
//! ```
//! use nodesel_core::{select, SelectionRequest};
//! use nodesel_topology::builders::star;
//! use nodesel_topology::units::MBPS;
//!
//! let (mut topo, ids) = star(6, 100.0 * MBPS);
//! topo.set_load_avg(ids[0], 3.0); // busy node
//! let sel = select(&topo, &SelectionRequest::balanced(4)).unwrap();
//! assert_eq!(sel.nodes.len(), 4);
//! assert!(!sel.nodes.contains(&ids[0])); // the busy node is avoided
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod algorithms;
mod baseline;
pub mod canonical;
mod exhaustive;
pub mod groups;
pub mod latency;
pub mod migration;
mod quality;
mod request;
pub mod selector;
pub mod sizing;
pub mod spec;
pub mod supervisor;
pub mod twolevel;
mod weights;

pub use algorithms::{
    balanced, balanced_reference, max_bandwidth, max_bandwidth_reference, max_compute, select,
    Selection,
};
pub use baseline::{random_selection, static_selection};
pub use canonical::CanonicalRequest;
pub use exhaustive::{
    exhaustive_select, exhaustive_select_reference, Combinations, ExhaustiveObjective,
};
pub use groups::{select_groups, GroupSpec, GroupedRequest, GroupedSelection};
pub use latency::{pairwise_latency, select_within_latency};
pub use quality::{evaluate, evaluate_in, PairwiseCache, Quality};
pub use request::{Constraints, GreedyPolicy, Objective, SelectionRequest};
pub use selector::{
    selector_for, BalancedSelector, LinkFootprint, MaxBandwidthSelector, MaxComputeSelector,
    SelectionFootprint, Selector,
};
pub use sizing::{select_node_count, LooselySynchronousModel, PerformanceModel, SizedSelection};
pub use spec::{select_for_spec, AppSpec, CommPattern, SpecSelection};
pub use supervisor::{Supervisor, SupervisorCheck, SupervisorPolicy, SupervisorVerdict};
pub use twolevel::{TwoLevelConfig, TwoLevelOutcome, TwoLevelSelector};
pub use weights::Weights;

/// Errors produced by the selection procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// Zero nodes were requested.
    ZeroCount,
    /// More required nodes than the requested set size.
    TooManyRequired {
        /// Number of required nodes.
        required: usize,
        /// Requested selection size.
        count: usize,
    },
    /// A required node is missing, not a compute node, or excluded by the
    /// other constraints.
    RequiredNotEligible(nodesel_topology::NodeId),
    /// Fewer eligible compute nodes exist than were requested.
    NotEnoughNodes {
        /// Eligible compute nodes available.
        eligible: usize,
        /// Requested selection size.
        requested: usize,
    },
    /// Enough nodes exist, but no connected component satisfies all
    /// constraints simultaneously.
    Unsatisfiable,
    /// The measurement data behind the request is too old to answer a
    /// bandwidth-sensitive question honestly. Produced by service layers
    /// running a degraded-mode policy (see `nodesel-service`); [`select`]
    /// itself never returns it — a snapshot in hand is always answerable,
    /// only a *service* knows how long ago its snapshot was current.
    DataTooStale,
}

impl core::fmt::Display for SelectError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SelectError::ZeroCount => write!(f, "requested zero nodes"),
            SelectError::TooManyRequired { required, count } => {
                write!(f, "{required} required nodes exceed request size {count}")
            }
            SelectError::RequiredNotEligible(n) => {
                write!(f, "required node {n:?} is not an eligible compute node")
            }
            SelectError::NotEnoughNodes {
                eligible,
                requested,
            } => write!(
                f,
                "only {eligible} eligible compute nodes for a request of {requested}"
            ),
            SelectError::Unsatisfiable => {
                write!(f, "no connected node set satisfies the constraints")
            }
            SelectError::DataTooStale => {
                write!(
                    f,
                    "measurement data too stale for a bandwidth-sensitive selection"
                )
            }
        }
    }
}

impl std::error::Error for SelectError {}
