//! Disjoint-set forest (union-find) with per-component aggregates.
//!
//! The selection fast paths in `nodesel-core` replace the paper's literal
//! "delete an edge, recompute every component" loops with the equivalent
//! incremental formulation: process edges in sorted order and *merge*
//! components. This module provides the connectivity machinery for that
//! direction: path-halving `find`, union-by-size `union`, and two
//! aggregates maintained at union time that the algorithms read off the
//! component root in O(α(n)):
//!
//! * the number of **eligible** nodes in each component (an eligible node
//!   is whatever the caller seeded — typically a compute node passing the
//!   request's constraints), and
//! * the **minimum key** over the eligible nodes of each component
//!   (typically the effective CPU fraction).
//!
//! The same structure underlies communication-aware allocators at
//! supercomputer scale; near-linear connectivity is what lets the greedy
//! algorithms run in O(E log E) overall instead of O(E²).

/// Disjoint-set forest over `0..len` with eligible-count and min-key
/// aggregates.
///
/// ```
/// use nodesel_topology::unionfind::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.seed_eligible(0, 0.5);
/// uf.seed_eligible(2, 0.25);
/// assert!(uf.union(0, 1).is_some());
/// assert!(uf.union(1, 2).is_some());
/// assert!(uf.union(0, 2).is_none()); // already joined
/// let root = uf.find(2);
/// assert_eq!(uf.eligible_count(root), 2);
/// assert_eq!(uf.min_key(root), 0.25);
/// assert_eq!(uf.component_count(), 2); // {0,1,2} and {3}
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    eligible: Vec<u32>,
    min_key: Vec<f64>,
    components: usize,
}

impl UnionFind {
    /// Creates a forest of `len` singleton components with zero eligible
    /// nodes each.
    pub fn new(len: usize) -> Self {
        assert!(u32::try_from(len).is_ok(), "too many elements");
        let mut uf = UnionFind {
            parent: Vec::new(),
            size: Vec::new(),
            eligible: Vec::new(),
            min_key: Vec::new(),
            components: 0,
        };
        uf.reset(len);
        uf
    }

    /// Resets to `len` singletons, reusing the existing allocations.
    pub fn reset(&mut self, len: usize) {
        self.parent.clear();
        self.parent.extend(0..len as u32);
        self.size.clear();
        self.size.resize(len, 1);
        self.eligible.clear();
        self.eligible.resize(len, 0);
        self.min_key.clear();
        self.min_key.resize(len, f64::INFINITY);
        self.components = len;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for a zero-element forest.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Marks singleton `i` as eligible with aggregate key `key` (e.g. its
    /// effective CPU). Call before any unions involving `i`.
    pub fn seed_eligible(&mut self, i: usize, key: f64) {
        debug_assert_eq!(self.parent[i], i as u32, "seed before unions");
        self.eligible[i] = 1;
        self.min_key[i] = key;
    }

    /// Root of the component containing `i`, with path halving.
    pub fn find(&mut self, i: usize) -> usize {
        let mut x = i as u32;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x as usize
    }

    /// Merges the components of `a` and `b` by size. Returns the surviving
    /// root when the two were distinct, `None` when already joined.
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        if self.size[ra] < self.size[rb] {
            core::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.eligible[ra] += self.eligible[rb];
        self.min_key[ra] = self.min_key[ra].min(self.min_key[rb]);
        self.components -= 1;
        Some(ra)
    }

    /// True when `a` and `b` are in the same component.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Total number of nodes in the component containing `i`.
    pub fn component_size(&mut self, i: usize) -> usize {
        let r = self.find(i);
        self.size[r] as usize
    }

    /// Number of eligible nodes in the component containing `i`.
    ///
    /// `i` may be any member; pass a root (e.g. the return value of
    /// [`UnionFind::union`]) to skip the find.
    pub fn eligible_count(&mut self, i: usize) -> usize {
        let r = self.find(i);
        self.eligible[r] as usize
    }

    /// Minimum key over the eligible nodes of the component containing
    /// `i`; `+∞` when the component has none.
    pub fn min_key(&mut self, i: usize) -> f64 {
        let r = self.find(i);
        self.min_key[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_separate() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.component_size(2), 1);
        assert_eq!(uf.eligible_count(0), 0);
        assert_eq!(uf.min_key(0), f64::INFINITY);
    }

    #[test]
    fn union_merges_and_aggregates() {
        let mut uf = UnionFind::new(5);
        for (i, k) in [(0, 0.9), (1, 0.5), (3, 0.7)] {
            uf.seed_eligible(i, k);
        }
        assert!(uf.union(0, 1).is_some());
        assert!(uf.union(2, 3).is_some());
        assert_eq!(uf.eligible_count(1), 2);
        assert_eq!(uf.min_key(0), 0.5);
        assert_eq!(uf.eligible_count(2), 1);
        let root = uf.union(1, 2).unwrap();
        assert_eq!(uf.eligible_count(root), 3);
        assert_eq!(uf.min_key(root), 0.5);
        assert_eq!(uf.component_size(3), 4);
        assert_eq!(uf.component_count(), 2); // merged set and {4}
        assert!(uf.union(0, 3).is_none());
    }

    #[test]
    fn union_by_size_keeps_larger_root() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(0, 2);
        // {0,1,2} (size 3) absorbs {3}.
        let root = uf.union(3, 0).unwrap();
        assert_eq!(root, uf.find(1));
        assert_eq!(uf.component_size(3), 4);
    }

    #[test]
    fn reset_reuses_allocations() {
        let mut uf = UnionFind::new(4);
        uf.seed_eligible(0, 0.1);
        uf.union(0, 1);
        uf.reset(6);
        assert_eq!(uf.len(), 6);
        assert_eq!(uf.component_count(), 6);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.eligible_count(0), 0);
    }

    #[test]
    fn find_uses_path_halving() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..8 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.component_count(), 1);
    }
}
