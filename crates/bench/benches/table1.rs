//! Regenerates **Table 1** (the paper's only table): application
//! performance under computation load and network traffic with random vs
//! automatically selected nodes, then benchmarks the per-trial cost.

use criterion::{criterion_group, criterion_main, Criterion};
use nodesel_apps::AppModel;
use nodesel_experiments::table1::{paper_table1, run_table1, Table1Config};
use nodesel_experiments::{run_trial, Condition, Strategy, Testbed, TrialConfig};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Regenerate the artifact once, with a healthy repetition count.
    let config = Table1Config {
        repetitions: 24,
        ..Table1Config::default()
    };
    let table = run_table1(&config);
    eprintln!(
        "\n=== Table 1 (measured, {} reps/cell) ===",
        config.repetitions
    );
    eprintln!("{table}");
    eprintln!("=== Table 1 (paper) ===");
    for row in &table.rows {
        if let Some(p) = paper_table1(&row.app) {
            eprintln!(
                "{:<10} random {:?} auto {:?} ref {}",
                row.app, p.random, p.auto, p.reference
            );
        }
    }

    // Benchmark the unit of work: one full trial (warmup + generators +
    // selection + application run).
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    let suite = AppModel::paper_suite();
    let testbed = Testbed::cmu();
    for (app, m) in &suite {
        group.bench_function(format!("trial/{}", app.name()), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_trial(
                    &testbed,
                    app,
                    *m,
                    Strategy::Automatic,
                    Condition::Both,
                    &TrialConfig::default(),
                    seed,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
