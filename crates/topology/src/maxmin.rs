//! Max-min fair bandwidth allocation (progressive filling).
//!
//! Given per-resource capacities and a set of flows, each consuming one
//! unit of rate on every resource it crosses, the **max-min fair**
//! allocation maximizes the minimum rate, then the second minimum, and so
//! on. Progressive filling computes it exactly: repeatedly find the
//! resource with the smallest equal share among its unfrozen flows, freeze
//! those flows at that share, subtract, and continue.
//!
//! Two consumers share this module: the simulator's flow table (actual
//! bandwidth of competing transfers) and the Remos flow queries that
//! "account for sharing of network links by multiple flows" (paper §2.2).

/// Dense index of a directed link: `edge_index * 2 + direction`.
#[inline]
pub fn dir_slot(edge: crate::EdgeId, dir: crate::Direction) -> usize {
    edge.index() * 2 + dir as usize
}

/// Computes the max-min fair rate for each flow.
///
/// * `capacity[s]` — capacity of resource (directed link) `s`;
/// * `flow_slots[f]` — the resources flow `f` crosses (deduplicated;
///   static routes never revisit a link).
///
/// Returns one rate per flow. Flows crossing no resources get
/// `f64::INFINITY` (local communication is not bandwidth-limited).
/// Deterministic: the bottleneck chosen each round is the lowest-share,
/// lowest-index resource.
///
/// ```
/// use nodesel_topology::maxmin::max_min_allocate;
/// // Two flows share resource 0 (cap 30); flow 1 alone also crosses
/// // resource 1 (cap 100) and picks up the slack there... flow 2 does:
/// let rates = max_min_allocate(&[30.0, 100.0], &[vec![0], vec![0, 1], vec![1]]);
/// assert_eq!(rates, vec![15.0, 15.0, 85.0]);
/// ```
pub fn max_min_allocate(capacity: &[f64], flow_slots: &[Vec<usize>]) -> Vec<f64> {
    let mut scratch = MaxMinScratch::new();
    let mut arena = Vec::new();
    let mut spans = Vec::with_capacity(flow_slots.len());
    for path in flow_slots {
        let start = arena.len();
        arena.extend_from_slice(path);
        spans.push((start, path.len()));
    }
    let mut rates = Vec::new();
    max_min_allocate_into(capacity, &arena, &spans, &mut rates, &mut scratch);
    rates
}

/// Reusable working memory for [`max_min_allocate_into`].
///
/// All per-slot state is epoch-stamped, so a solve over a small
/// sub-problem (e.g. one sharing cluster of a flow table) touches only the
/// slots its flows cross — never the full capacity vector. After warm-up
/// no call allocates.
#[derive(Debug, Default, Clone)]
pub struct MaxMinScratch {
    /// Residual capacity per slot (valid where `stamp == epoch`).
    remaining: Vec<f64>,
    /// Unfrozen flows crossing each slot (valid where `stamp == epoch`).
    count: Vec<u32>,
    /// Epoch stamp per slot; lazily initializes `remaining`/`count`.
    stamp: Vec<u32>,
    epoch: u32,
    /// Touched slots, ascending (the reference scan order).
    touched: Vec<usize>,
    /// Per-flow frozen flag for the current call.
    frozen: Vec<bool>,
    /// Slot -> flows incidence for the current call (CSR over `touched`).
    inc_start: Vec<usize>,
    inc_cursor: Vec<usize>,
    inc_flows: Vec<u32>,
    /// Local index of each touched slot within `touched` (valid where
    /// `stamp == epoch`).
    local: Vec<u32>,
}

impl MaxMinScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, slots: usize) {
        if self.stamp.len() < slots {
            self.stamp.resize(slots, 0);
            self.remaining.resize(slots, 0.0);
            self.count.resize(slots, 0);
            self.local.resize(slots, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
        self.frozen.clear();
        self.inc_flows.clear();
    }
}

/// In-place [`max_min_allocate`]: same allocation, caller-provided memory.
///
/// Flow paths are given in CSR form: flow `f` crosses the slots
/// `hop_arena[spans[f].0 .. spans[f].0 + spans[f].1]`. `rates` is cleared
/// and filled with one rate per flow. Work and touched scratch memory are
/// proportional to the sub-problem (total hops + touched slots²), not to
/// `capacity.len()`, which makes the function suitable for incremental
/// cluster re-solves; results are bit-identical to [`max_min_allocate`]
/// over the same flows.
pub fn max_min_allocate_into(
    capacity: &[f64],
    hop_arena: &[usize],
    spans: &[(usize, usize)],
    rates: &mut Vec<f64>,
    scratch: &mut MaxMinScratch,
) {
    let nf = spans.len();
    rates.clear();
    rates.resize(nf, f64::INFINITY);
    if nf == 0 {
        return;
    }
    scratch.begin(capacity.len());
    let sc = scratch;
    sc.frozen.resize(nf, false);
    let mut unfrozen = 0usize;
    let path_of = |&(start, len): &(usize, usize)| &hop_arena[start..start + len];
    for (f, span) in spans.iter().enumerate() {
        let path = path_of(span);
        if path.is_empty() {
            sc.frozen[f] = true; // stays at infinity
            continue;
        }
        unfrozen += 1;
        for &s in path {
            debug_assert!(s < capacity.len(), "slot out of range");
            if sc.stamp[s] != sc.epoch {
                sc.stamp[s] = sc.epoch;
                sc.remaining[s] = capacity[s];
                sc.count[s] = 0;
                sc.touched.push(s);
            }
            sc.count[s] += 1;
        }
    }
    // Ascending slot order reproduces the reference tie-break (equal
    // shares resolve to the lowest slot index).
    sc.touched.sort_unstable();
    for (li, &s) in sc.touched.iter().enumerate() {
        sc.local[s] = li as u32;
    }
    // Slot -> flows incidence (flows listed in ascending index, matching
    // the reference freeze order).
    let nt = sc.touched.len();
    sc.inc_start.clear();
    sc.inc_start.resize(nt + 1, 0);
    for (li, &s) in sc.touched.iter().enumerate() {
        sc.inc_start[li + 1] = sc.inc_start[li] + sc.count[s] as usize;
    }
    sc.inc_flows.resize(sc.inc_start[nt], 0);
    sc.inc_cursor.clear();
    sc.inc_cursor.extend_from_slice(&sc.inc_start[..nt]);
    for (f, span) in spans.iter().enumerate() {
        if sc.frozen[f] {
            continue;
        }
        for &s in path_of(span) {
            let li = sc.local[s] as usize;
            sc.inc_flows[sc.inc_cursor[li]] = f as u32;
            sc.inc_cursor[li] += 1;
        }
    }
    while unfrozen > 0 {
        let mut best: Option<(f64, usize)> = None;
        for li in 0..nt {
            let s = sc.touched[li];
            if sc.count[s] == 0 {
                continue;
            }
            let share = sc.remaining[s] / sc.count[s] as f64;
            match best {
                Some((b, _)) if b <= share => {}
                _ => best = Some((share, li)),
            }
        }
        let Some((share, li)) = best else {
            break;
        };
        let share = share.max(0.0);
        for i in sc.inc_start[li]..sc.inc_start[li + 1] {
            let f = sc.inc_flows[i] as usize;
            if sc.frozen[f] {
                continue;
            }
            sc.frozen[f] = true;
            unfrozen -= 1;
            rates[f] = share;
            for &s in path_of(&spans[f]) {
                sc.remaining[s] = (sc.remaining[s] - share).max(0.0);
                sc.count[s] -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_bottleneck() {
        let rates = max_min_allocate(&[100.0, 10.0, 50.0], &[vec![0, 1, 2]]);
        assert_eq!(rates, vec![10.0]);
    }

    #[test]
    fn equal_split_on_shared_resource() {
        let rates = max_min_allocate(&[90.0], &[vec![0], vec![0], vec![0]]);
        assert_eq!(rates, vec![30.0, 30.0, 30.0]);
    }

    #[test]
    fn unbottlenecked_flow_takes_the_slack() {
        // Flows A and B share slot 0 (cap 30); flow C shares slot 1 with A
        // (cap 100). A freezes at 15; C then gets 85.
        let rates = max_min_allocate(&[30.0, 100.0], &[vec![0, 1], vec![0], vec![1]]);
        assert_eq!(rates, vec![15.0, 15.0, 85.0]);
    }

    #[test]
    fn empty_path_is_unlimited() {
        let rates = max_min_allocate(&[10.0], &[vec![], vec![0]]);
        assert!(rates[0].is_infinite());
        assert_eq!(rates[1], 10.0);
    }

    #[test]
    fn no_flows() {
        assert!(max_min_allocate(&[1.0], &[]).is_empty());
    }

    #[test]
    fn allocation_never_oversubscribes() {
        // A little mesh of 4 slots and 6 flows with overlapping paths.
        let caps = [40.0, 25.0, 60.0, 10.0];
        let flows = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 2],
            vec![3],
            vec![2, 3],
            vec![0],
        ];
        let rates = max_min_allocate(&caps, &flows);
        let mut used = [0.0f64; 4];
        for (f, path) in flows.iter().enumerate() {
            assert!(rates[f] > 0.0);
            for &s in path {
                used[s] += rates[f];
            }
        }
        for (s, &u) in used.iter().enumerate() {
            assert!(u <= caps[s] * (1.0 + 1e-9), "slot {s} oversubscribed: {u}");
        }
        // Max-min property (spot): every flow is bottlenecked somewhere —
        // on some crossed slot the capacity is (nearly) exhausted.
        for (f, path) in flows.iter().enumerate() {
            let bottlenecked = path.iter().any(|&s| used[s] >= caps[s] - 1e-6);
            assert!(
                bottlenecked,
                "flow {f} (rate {}) is not bottlenecked",
                rates[f]
            );
        }
    }

    #[test]
    fn zero_capacity_resource_starves_its_flows() {
        let rates = max_min_allocate(&[0.0, 100.0], &[vec![0], vec![1]]);
        assert_eq!(rates, vec![0.0, 100.0]);
    }
}
