//! Synthetic background load and traffic generators.
//!
//! Reimplements the §4.2 workload of the PPoPP '99 node-selection paper:
//!
//! * **Compute load** ([`install_load`]): per-node Poisson job arrivals
//!   with durations from a mixture of exponential and (truncated) Pareto
//!   distributions — the Harchol-Balter & Downey process-lifetime model the
//!   authors used, parameterized for a compute-intensive departmental
//!   cluster rather than interactive desktops.
//! * **Network traffic** ([`install_traffic`]): Poisson message arrivals
//!   between uniformly random ordered node pairs with LogNormal message
//!   sizes.
//!
//! All sampling distributions are implemented from scratch in [`dist`] and
//! pinned by statistical tests. Generators are deterministic per seed and
//! per node (seeds are split with SplitMix64), so experiment repetitions
//! are exactly reproducible.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dist;
mod load;
mod traffic;

pub use load::{install_load, install_load_at, JobDurationModel, LoadConfig, LoadHandle};
pub use traffic::{install_traffic, install_traffic_at, TrafficConfig, TrafficHandle};
