//! Exhaustive (brute-force) selection: ground truth for small graphs.
//!
//! Enumerates every `m`-subset of eligible compute nodes, evaluates the
//! exact pairwise [`Quality`](crate::Quality), and returns the best. The
//! naive cost is `O(C(n, m) · m²)` route walks; [`exhaustive_select`]
//! keeps the same answer but makes the search practical on somewhat larger
//! graphs by combining
//!
//! * a [`PairwiseCache`] so each candidate pair's route is walked once,
//! * incremental prefix evaluation over the in-place [`Combinations`]
//!   cursor — advancing position `k` re-evaluates only levels `k..m`,
//! * best-so-far pruning: every objective is monotone nonincreasing as a
//!   prefix grows, so a prefix that cannot beat the current best (or that
//!   contains a disconnected pair or violates a bandwidth floor) discards
//!   its whole subtree via [`Combinations::advance_from`], and
//! * a chunked scoped-thread fan-out over the first subset element, with a
//!   shared atomic best-so-far tightening every worker's pruning bound.
//!
//! [`exhaustive_select_reference`] is the original single-thread, unpruned
//! oracle; the property tests assert the two agree on the full
//! [`Selection`](crate::Selection), including tie-breaking toward the
//! lexicographically smallest node set.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::quality::{evaluate, PairwiseCache};
use crate::request::Constraints;
use crate::weights::Weights;
use crate::{SelectError, Selection};
use nodesel_topology::{NodeId, Routes, Topology};

/// What the brute-force search should maximize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExhaustiveObjective {
    /// Minimum effective CPU of the set.
    MinCpu,
    /// Minimum pairwise available bandwidth (bits/s).
    MinBandwidth,
    /// Balanced score under the given weights.
    Balanced(Weights),
}

/// `C(n, k)` computed in `u128` with saturation, so size hints stay
/// overflow-safe for any pool the oracle could conceivably be pointed at.
fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut r: u128 = 1;
    for i in 1..=k {
        // Multiply before dividing: the intermediate product of a running
        // binomial by its next factor is always divisible by `i`.
        let f = (n - k + i) as u128;
        r = match r.checked_mul(f) {
            Some(x) => x / i as u128,
            None => return u128::MAX,
        };
    }
    r
}

/// Iterator over all `m`-combinations of `0..n` in lexicographic order.
///
/// Besides the allocating [`Iterator`] interface, the cursor can be driven
/// in place: [`Combinations::current`] exposes the live index slice and
/// [`Combinations::advance`] / [`Combinations::advance_from`] step it —
/// the latter skipping the entire subtree sharing the current prefix,
/// which is what the oracle's pruning hooks into.
pub struct Combinations {
    n: usize,
    idx: Vec<usize>,
    done: bool,
}

impl Combinations {
    /// Creates the iterator; yields nothing when `m > n`.
    pub fn new(n: usize, m: usize) -> Self {
        Combinations {
            n,
            idx: (0..m).collect(),
            done: m > n,
        }
    }

    /// The combination the cursor is on, or `None` when exhausted.
    pub fn current(&self) -> Option<&[usize]> {
        if self.done {
            None
        } else {
            Some(&self.idx)
        }
    }

    /// Steps to the next combination in place. Returns the lowest position
    /// whose index changed, or `None` when the sequence is exhausted.
    pub fn advance(&mut self) -> Option<usize> {
        match self.idx.len() {
            0 => {
                self.done = true;
                None
            }
            m => self.advance_from(m - 1),
        }
    }

    /// Steps past every remaining combination sharing the current prefix
    /// `..=pos` — the pruning move: when a prefix is already hopeless, its
    /// whole subtree is skipped in O(m). Returns like
    /// [`Combinations::advance`].
    pub fn advance_from(&mut self, pos: usize) -> Option<usize> {
        if self.done {
            return None;
        }
        let m = self.idx.len();
        if m == 0 {
            self.done = true;
            return None;
        }
        debug_assert!(pos < m);
        let mut i = pos + 1;
        while i > 0 {
            i -= 1;
            if self.idx[i] < self.n - (m - i) {
                self.idx[i] += 1;
                for j in i + 1..m {
                    self.idx[j] = self.idx[j - 1] + 1;
                }
                return Some(i);
            }
        }
        self.done = true;
        None
    }

    /// Combinations not yet yielded (the current one included), saturating
    /// at `u128::MAX`.
    pub fn remaining(&self) -> u128 {
        if self.done {
            return 0;
        }
        let m = self.idx.len();
        // Rank of the current combination = how many precede it.
        let mut rank: u128 = 0;
        let mut prev = 0usize;
        for (i, &v) in self.idx.iter().enumerate() {
            for j in prev..v {
                rank = rank.saturating_add(binomial(self.n - 1 - j, m - 1 - i));
            }
            prev = v + 1;
        }
        binomial(self.n, m).saturating_sub(rank)
    }

    /// Drives the cursor to exhaustion, passing each combination to `f`
    /// without allocating per item.
    pub fn visit(mut self, mut f: impl FnMut(&[usize])) {
        if self.done {
            return;
        }
        loop {
            f(&self.idx);
            if self.advance().is_none() {
                break;
            }
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.current()?.to_vec();
        self.advance();
        Some(current)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match usize::try_from(self.remaining()) {
            Ok(r) => (r, Some(r)),
            Err(_) => (usize::MAX, None),
        }
    }
}

/// Exact only while `C(n, m)` fits a `usize`; `len()` panics beyond that.
impl ExactSizeIterator for Combinations {}

/// Aggregates of a subset prefix: every field is monotone nonincreasing
/// (`matched` aside) as elements are appended, which is what makes
/// best-so-far pruning sound.
#[derive(Clone, Copy)]
struct Prefix {
    min_cpu: f64,
    min_bw: f64,
    min_frac: f64,
    /// Required pool indices already contained in the prefix (required
    /// indices are sorted, and prefixes are ascending, so this is a simple
    /// merge position).
    matched: usize,
}

fn prefix_value(objective: ExhaustiveObjective, p: &Prefix) -> f64 {
    match objective {
        ExhaustiveObjective::MinCpu => p.min_cpu,
        ExhaustiveObjective::MinBandwidth => p.min_bw,
        ExhaustiveObjective::Balanced(w) => (p.min_cpu / w.compute).min(p.min_frac / w.comm),
    }
}

/// Scans every `m`-subset whose smallest pool index is `first`, returning
/// the best (value, pool indices) candidate — the *first* best in
/// lexicographic order, so per-worker results merge deterministically.
///
/// `shared` holds the bit pattern of the best value found by any worker so
/// far (monotone `fetch_max`; sound because all objective values are
/// nonnegative, where the IEEE-754 bit order matches the value order). A
/// prefix strictly below it can be pruned even before the local best
/// catches up — strictly, because an equal-valued candidate from an
/// earlier range must still win the tie.
#[allow(clippy::too_many_arguments)]
fn scan_first(
    cache: &PairwiseCache,
    objective: ExhaustiveObjective,
    floor: Option<f64>,
    required: &[usize],
    first: usize,
    m: usize,
    shared: &AtomicU64,
) -> Option<(f64, Vec<usize>)> {
    let shared_best = || f64::from_bits(shared.load(Ordering::Relaxed));
    let root = Prefix {
        min_cpu: cache.cpu(first),
        min_bw: f64::INFINITY,
        min_frac: 1.0,
        matched: usize::from(required.first() == Some(&first)),
    };
    // A required index below `first` can never appear in this range.
    if root.matched < required.len() && first > required[root.matched] {
        return None;
    }
    if m == 1 {
        if root.matched < required.len() {
            return None;
        }
        let value = prefix_value(objective, &root);
        if value < shared_best() {
            return None;
        }
        shared.fetch_max(value.to_bits(), Ordering::Relaxed);
        return Some((value, vec![first]));
    }
    if prefix_value(objective, &root) < shared_best() {
        return None;
    }
    let mut levels = vec![root; m];
    let mut inner = Combinations::new(cache.len() - first - 1, m - 1);
    let mut local: Option<(f64, Vec<usize>)> = None;
    let mut dirty = 0usize;
    while let Some(cur) = inner.current() {
        // Re-evaluate levels from the lowest position that changed; a
        // failing level prunes its whole subtree.
        let mut pruned_at: Option<usize> = None;
        'levels: for p in dirty..m - 1 {
            let e = first + 1 + cur[p];
            let prev = levels[p];
            let mut next = Prefix {
                min_cpu: prev.min_cpu.min(cache.cpu(e)),
                min_bw: prev.min_bw,
                min_frac: prev.min_frac,
                matched: prev.matched,
            };
            if !cache.connected(first, e) {
                pruned_at = Some(p);
                break;
            }
            next.min_bw = next.min_bw.min(cache.bw(first, e));
            next.min_frac = next.min_frac.min(cache.bwfraction(first, e));
            for &q in &cur[..p] {
                let f = first + 1 + q;
                if !cache.connected(f, e) {
                    pruned_at = Some(p);
                    break 'levels;
                }
                next.min_bw = next.min_bw.min(cache.bw(f, e));
                next.min_frac = next.min_frac.min(cache.bwfraction(f, e));
            }
            if next.matched < required.len() {
                match e.cmp(&required[next.matched]) {
                    core::cmp::Ordering::Equal => next.matched += 1,
                    core::cmp::Ordering::Greater => {
                        // Deeper elements only grow, so the missing
                        // required index is unreachable below this prefix.
                        pruned_at = Some(p);
                        break;
                    }
                    core::cmp::Ordering::Less => {}
                }
            }
            if floor.is_some_and(|fl| next.min_bw < fl) {
                pruned_at = Some(p);
                break;
            }
            let value = prefix_value(objective, &next);
            if local.as_ref().is_some_and(|(b, _)| value <= *b) || value < shared_best() {
                pruned_at = Some(p);
                break;
            }
            levels[p + 1] = next;
        }
        let step = match pruned_at {
            Some(p) => inner.advance_from(p),
            None => {
                let leaf = levels[m - 1];
                if leaf.matched == required.len() {
                    let value = prefix_value(objective, &leaf);
                    let mut sel = Vec::with_capacity(m);
                    sel.push(first);
                    sel.extend(cur.iter().map(|&j| first + 1 + j));
                    shared.fetch_max(value.to_bits(), Ordering::Relaxed);
                    local = Some((value, sel));
                }
                inner.advance()
            }
        };
        match step {
            Some(changed) => dirty = changed,
            None => break,
        }
    }
    local
}

/// Brute-force optimal selection.
///
/// Subsets whose nodes are not mutually connected are skipped. Ties are
/// broken toward the lexicographically smallest node set, making the result
/// deterministic and directly comparable with the greedy algorithms.
///
/// This is the pruned, parallel oracle (see the module docs); it returns
/// exactly what [`exhaustive_select_reference`] returns, only faster.
pub fn exhaustive_select(
    topo: &Topology,
    m: usize,
    objective: ExhaustiveObjective,
    constraints: &Constraints,
    reference_bandwidth: Option<f64>,
) -> Result<Selection, SelectError> {
    if m == 0 {
        return Err(SelectError::ZeroCount);
    }
    let pool = eligible_pool(topo, constraints);
    if pool.len() < m {
        return Err(SelectError::NotEnoughNodes {
            eligible: pool.len(),
            requested: m,
        });
    }
    // The cache and the winner re-evaluation only query routes among pool
    // members, so build just those BFS rows.
    let routes = Routes::for_sources(topo, pool.iter().copied());
    let weights = match objective {
        ExhaustiveObjective::Balanced(w) => w,
        _ => Weights::EQUAL,
    };
    // Required nodes as sorted pool indices; one outside the pool means no
    // subset can ever contain it.
    let mut required: Vec<usize> = Vec::with_capacity(constraints.required.len());
    for r in &constraints.required {
        match pool.iter().position(|n| n == r) {
            Some(i) => required.push(i),
            None => return Err(SelectError::Unsatisfiable),
        }
    }
    required.sort_unstable();
    required.dedup();
    if required.len() > m {
        return Err(SelectError::Unsatisfiable);
    }
    let cache = PairwiseCache::new(topo, &routes, &pool, reference_bandwidth);
    let floor = constraints.min_bandwidth;
    let tasks = pool.len() - m + 1;
    let mut results: Vec<Option<(f64, Vec<usize>)>> = vec![None; tasks];
    let shared = AtomicU64::new(0.0f64.to_bits());
    // Fan out over the first subset element; small searches stay serial so
    // the oracle keeps its place in tight test loops.
    let threads = if binomial(pool.len(), m) <= 1024 {
        1
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(tasks)
    };
    if threads <= 1 {
        for (first, slot) in results.iter_mut().enumerate() {
            *slot = scan_first(&cache, objective, floor, &required, first, m, &shared);
        }
    } else {
        let chunk = tasks.div_ceil(threads);
        let (cache, required, shared) = (&cache, required.as_slice(), &shared);
        std::thread::scope(|scope| {
            for (t, out) in results.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (k, slot) in out.iter_mut().enumerate() {
                        let first = t * chunk + k;
                        *slot = scan_first(cache, objective, floor, required, first, m, shared);
                    }
                });
            }
        });
    }
    // Merge in ascending first-element order, keeping strict improvements
    // only: the earliest range wins ties, preserving the reference's
    // lexicographic tie-breaking.
    let mut best: Option<&(f64, Vec<usize>)> = None;
    for r in results.iter().flatten() {
        match best {
            Some((b, _)) if *b >= r.0 => {}
            _ => best = Some(r),
        }
    }
    let (_, idxs) = best.ok_or(SelectError::Unsatisfiable)?;
    let nodes: Vec<NodeId> = idxs.iter().map(|&i| pool[i]).collect();
    // Re-evaluate the winner through the reference scorer so the returned
    // Quality is byte-identical to the unpruned oracle's.
    let quality = evaluate(topo, &routes, &nodes, reference_bandwidth);
    Ok(Selection {
        score: quality.score(weights),
        nodes,
        quality,
        iterations: 0,
    })
}

fn eligible_pool(topo: &Topology, constraints: &Constraints) -> Vec<NodeId> {
    topo.compute_nodes()
        .filter(|&n| {
            constraints
                .allowed
                .as_ref()
                .is_none_or(|set| set.contains(&n))
                && constraints
                    .min_cpu
                    .is_none_or(|c| topo.node(n).effective_cpu() >= c)
        })
        .collect()
}

/// The original brute-force oracle: single thread, no pruning, one full
/// [`evaluate`] per subset. Kept verbatim as the baseline the pruned
/// parallel search is tested (and benchmarked) against.
pub fn exhaustive_select_reference(
    topo: &Topology,
    m: usize,
    objective: ExhaustiveObjective,
    constraints: &Constraints,
    reference_bandwidth: Option<f64>,
) -> Result<Selection, SelectError> {
    if m == 0 {
        return Err(SelectError::ZeroCount);
    }
    let pool = eligible_pool(topo, constraints);
    if pool.len() < m {
        return Err(SelectError::NotEnoughNodes {
            eligible: pool.len(),
            requested: m,
        });
    }
    let routes = topo.routes();
    let weights = match objective {
        ExhaustiveObjective::Balanced(w) => w,
        _ => Weights::EQUAL,
    };
    let mut best: Option<(f64, Vec<NodeId>, crate::Quality)> = None;
    'outer: for combo in Combinations::new(pool.len(), m) {
        let nodes: Vec<NodeId> = combo.iter().map(|&i| pool[i]).collect();
        for &r in &constraints.required {
            if !nodes.contains(&r) {
                continue 'outer;
            }
        }
        // Skip disconnected subsets.
        for (i, &a) in nodes.iter().enumerate() {
            for &b in nodes.iter().skip(i + 1) {
                if routes.path(a, b).is_err() {
                    continue 'outer;
                }
            }
        }
        let q = evaluate(topo, &routes, &nodes, reference_bandwidth);
        if let Some(floor) = constraints.min_bandwidth {
            if q.min_bw < floor {
                continue;
            }
        }
        let value = match objective {
            ExhaustiveObjective::MinCpu => q.min_cpu,
            ExhaustiveObjective::MinBandwidth => q.min_bw,
            ExhaustiveObjective::Balanced(w) => q.score(w),
        };
        match &best {
            Some((b, _, _)) if *b >= value => {}
            _ => best = Some((value, nodes, q)),
        }
    }
    let (_, nodes, quality) = best.ok_or(SelectError::Unsatisfiable)?;
    Ok(Selection {
        score: quality.score(weights),
        nodes,
        quality,
        iterations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    #[test]
    fn combinations_enumerate_lexicographically() {
        let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(Combinations::new(3, 3).count(), 1);
        assert_eq!(Combinations::new(3, 4).count(), 0);
        assert_eq!(Combinations::new(5, 1).count(), 5);
        assert_eq!(Combinations::new(6, 3).count(), 20);
    }

    #[test]
    fn advance_reports_lowest_changed_position() {
        let mut c = Combinations::new(5, 3);
        assert_eq!(c.current(), Some(&[0, 1, 2][..]));
        assert_eq!(c.advance(), Some(2)); // [0,1,3]
        assert_eq!(c.advance(), Some(2)); // [0,1,4]
        assert_eq!(c.advance(), Some(1)); // [0,2,3]
        assert_eq!(c.current(), Some(&[0, 2, 3][..]));
    }

    #[test]
    fn advance_from_skips_the_prefix_subtree() {
        let mut c = Combinations::new(6, 3);
        // Prune everything starting [0, 1, _].
        assert_eq!(c.advance_from(1), Some(1));
        assert_eq!(c.current(), Some(&[0, 2, 3][..]));
        // Prune everything starting [0, _, _].
        assert_eq!(c.advance_from(0), Some(0));
        assert_eq!(c.current(), Some(&[1, 2, 3][..]));
        // Pruning at the last valid first element exhausts the cursor.
        assert_eq!(c.advance_from(0), Some(0));
        assert_eq!(c.current(), Some(&[2, 3, 4][..]));
        assert_eq!(c.advance_from(0), Some(0));
        assert_eq!(c.advance_from(0), None);
        assert_eq!(c.current(), None);
    }

    #[test]
    fn size_hint_tracks_remaining() {
        let mut c = Combinations::new(6, 3);
        assert_eq!(c.len(), 20);
        c.next();
        c.next();
        assert_eq!(c.len(), 18);
        assert_eq!(c.by_ref().count(), 18);
        assert_eq!(c.size_hint(), (0, Some(0)));
    }

    #[test]
    fn binomial_is_overflow_safe() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(52, 5), 2_598_960);
        assert_eq!(binomial(10, 11), 0);
        // C(1000, 500) overflows u128 by a huge margin: saturates.
        assert_eq!(binomial(1000, 500), u128::MAX);
        let c = Combinations::new(1000, 500);
        assert_eq!(c.size_hint(), (usize::MAX, None));
    }

    #[test]
    fn visit_matches_iterator() {
        let mut seen = Vec::new();
        Combinations::new(5, 2).visit(|c| seen.push(c.to_vec()));
        let all: Vec<Vec<usize>> = Combinations::new(5, 2).collect();
        assert_eq!(seen, all);
    }

    #[test]
    fn picks_the_obviously_best_pair() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 4.0);
        topo.set_load_avg(ids[1], 4.0);
        let sel = exhaustive_select(
            &topo,
            2,
            ExhaustiveObjective::Balanced(Weights::EQUAL),
            &Constraints::none(),
            None,
        )
        .unwrap();
        assert_eq!(sel.nodes, vec![ids[2], ids[3]]);
        assert_eq!(sel.quality.min_cpu, 1.0);
    }

    #[test]
    fn respects_required_nodes() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 4.0);
        let constraints = Constraints {
            required: vec![ids[0]],
            ..Constraints::none()
        };
        let sel = exhaustive_select(
            &topo,
            2,
            ExhaustiveObjective::Balanced(Weights::EQUAL),
            &constraints,
            None,
        )
        .unwrap();
        assert!(sel.nodes.contains(&ids[0]));
        assert_eq!(sel.quality.min_cpu, 0.2);
    }

    #[test]
    fn bandwidth_floor_filters_sets() {
        let mut topo = Topology::new();
        let a = topo.add_compute_node("a", 1.0);
        let b = topo.add_compute_node("b", 1.0);
        let c = topo.add_compute_node("c", 1.0);
        topo.add_link(a, b, 10.0 * MBPS);
        topo.add_link(b, c, 100.0 * MBPS);
        let constraints = Constraints {
            min_bandwidth: Some(50.0 * MBPS),
            ..Constraints::none()
        };
        let sel =
            exhaustive_select(&topo, 2, ExhaustiveObjective::MinCpu, &constraints, None).unwrap();
        assert_eq!(sel.nodes, vec![b, c]);
    }

    #[test]
    fn pruned_oracle_matches_reference_on_a_loaded_star() {
        let (mut topo, ids) = star(8, 100.0 * MBPS);
        for (i, &n) in ids.iter().enumerate() {
            topo.set_load_avg(n, (i % 3) as f64);
        }
        for m in 1..=4 {
            for objective in [
                ExhaustiveObjective::MinCpu,
                ExhaustiveObjective::MinBandwidth,
                ExhaustiveObjective::Balanced(Weights::comm_priority(2.0)),
            ] {
                let fast =
                    exhaustive_select(&topo, m, objective, &Constraints::none(), None).unwrap();
                let slow =
                    exhaustive_select_reference(&topo, m, objective, &Constraints::none(), None)
                        .unwrap();
                assert_eq!(fast, slow, "m={m}, objective={objective:?}");
            }
        }
    }

    #[test]
    fn pruned_oracle_matches_reference_under_constraints() {
        let (mut topo, ids) = star(7, 100.0 * MBPS);
        topo.set_load_avg(ids[1], 2.0);
        topo.set_load_avg(ids[4], 1.0);
        let constraints = Constraints {
            required: vec![ids[4]],
            min_cpu: Some(0.3),
            min_bandwidth: Some(10.0 * MBPS),
            ..Constraints::none()
        };
        for m in 1..=3 {
            let fast = exhaustive_select(
                &topo,
                m,
                ExhaustiveObjective::Balanced(Weights::EQUAL),
                &constraints,
                None,
            );
            let slow = exhaustive_select_reference(
                &topo,
                m,
                ExhaustiveObjective::Balanced(Weights::EQUAL),
                &constraints,
                None,
            );
            assert_eq!(fast, slow, "m={m}");
        }
    }
}
