//! Experiment drivers that regenerate the paper's evaluation artifacts.
//!
//! * [`table1`] — the full Table 1 matrix: three applications × {load,
//!   traffic, both} × {random, automatic}, with the unloaded reference
//!   column and the paper's "% change" and increase-ratio derived metrics;
//! * [`scenario`] — the Figure 4 worked example (automatic selection
//!   steering around a bulk `m-16 → m-18` stream);
//! * [`service_churn`] — a resident placement service polling the
//!   collector's versioned snapshot stream and refreshing a primed
//!   selector from epoch deltas;
//! * [`fault_study`] — random vs automatic vs supervised placement
//!   racing seeded fault plans (node crashes, optional reboots) against
//!   a deadline;
//! * [`driver`] — the single-trial machinery both are built on, reusable
//!   by the Criterion benches and ablations. Trials split at the warm-up
//!   boundary: a warmed simulator is [`nodesel_simnet::Sim::fork`]ed per
//!   strategy, and batch runners drain all cells through one flat work
//!   queue over scoped threads.
//!
//! Every experiment is a pure function of its seed: the simulator, the
//! generators and the selection algorithms are all deterministic, so rows
//! can be regenerated exactly.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chaos;
pub mod contention;
pub mod driver;
pub mod fault_study;
pub mod migration_study;
pub mod scenario;
pub mod sensitivity;
pub mod service_churn;
pub mod table1;
pub mod tomography;

pub use chaos::{
    render_chaos_table, run_chaos, run_soak, ChaosConfig, ChaosOutcome, ChaosPhase, PhaseCounts,
    ReconcileTotals, RepairSummary, SoakReport, CHAOS_PHASES,
};
pub use contention::{
    render_contention_table, run_contention, run_contention_study, ContentionConfig,
    ContentionOutcome, ContentionRegime, ContentionTestbed,
};
pub use driver::{
    mean, run_trial, run_trials, warm_trial, Condition, Strategy, Testbed, TrialConfig,
    TrialResult, WarmTrial,
};
pub use fault_study::{
    render_fault_table, run_fault_study, run_fault_trial, FaultCell, FaultOutcome, FaultStrategy,
    FaultStudyConfig,
};
pub use scenario::{run_fig4_scenario, Fig4Outcome};
pub use sensitivity::{
    length_sensitivity, load_sensitivity, traffic_sensitivity, SensitivityPoint,
};
pub use service_churn::{run_service_churn, ChurnCheck, ChurnConfig, ChurnReport};
pub use table1::{
    paper_table1, run_table1, run_table1_on, run_table1_row, Table1, Table1Config, Table1Row,
};
