//! Typed errors for the placement lifecycle.
//!
//! The answer-only path (`get`) is infallible by design — a selection
//! that cannot be satisfied is itself an answer
//! ([`nodesel_core::SelectError`] travels *inside* the
//! [`crate::Placement`]). The lifecycle path (`admit` / `release` /
//! `supervise`) is different: the caller hands the service state it must
//! validate (a demand, a job handle), so failures there are typed and
//! returned, never panicked. Lock poisoning remains a panic throughout
//! the crate — see [`crate::service`]'s locking notes.

use crate::ledger::JobId;
use nodesel_core::SelectError;

/// Why a placement-lifecycle call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The job handle does not name a live ledger entry — never admitted
    /// here, or already released.
    UnknownJob(JobId),
    /// A demand magnitude was not a finite, non-negative number.
    InvalidDemand {
        /// Which magnitude was rejected (`"cpu_load"` or
        /// `"pair_bandwidth"`).
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The underlying selection failed; the ledger was not changed.
    Select(SelectError),
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::UnknownJob(job) => {
                write!(
                    f,
                    "job {job:?} is not admitted (unknown or already released)"
                )
            }
            ServiceError::InvalidDemand { field, value } => {
                write!(
                    f,
                    "demand {field} = {value} is not a finite non-negative number"
                )
            }
            ServiceError::Select(e) => write!(f, "selection failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Select(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SelectError> for ServiceError {
    fn from(e: SelectError) -> Self {
        ServiceError::Select(e)
    }
}
