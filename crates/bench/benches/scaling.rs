//! Scaling sweep: flat growth check plus hierarchical two-level
//! selection out to n = 100k.
//!
//! Two experiments share this bin:
//!
//! * **Flat growth** — the §3.2 complexity claim on the flat engines: a
//!   log-log sweep of `balanced` over random trees with the fitted
//!   growth exponent (the paper claims O(n²); the sorted-edge engines
//!   do better).
//! * **Two-level sweep** — per-selection latency of
//!   [`nodesel_core::TwoLevelSelector`] on hierarchical fabrics
//!   (star domains on a binary trunk tree) from n = 200 to n = 100k,
//!   for the `max_bandwidth` and `balanced` objectives. The first
//!   select on a fresh snapshot pays the hierarchy prime (domain tree,
//!   route sketch, per-domain summaries), reported as `prime_ms`;
//!   steady-state selects against the same epoch are the
//!   sub-millisecond claim, reported as the median `two_level_select_us`.
//!   On sizes where the exact flat solve is feasible (n ≤ 2000) the
//!   sweep also records the flat latency and value, the relative error
//!   of the two-level answer, the selector's *reported* relative error
//!   bound (which must cover the true error — the proptests in
//!   `nodesel-core` guard that), and the mean relative error of the
//!   landmark bandwidth sketch over sampled cross-domain pairs.
//!
//! Results land in `BENCH_scaling.json` under `"scaling"`; the file is
//! read-modify-written so foreign sections survive, and the written
//! document is validated against the expected schema (the CI smoke step
//! fails on drift). `--test`/`--smoke` truncates the sweep at n = 2000;
//! measured numbers are whatever this machine gives, reported as
//! measured.

use nodesel_bench::{conditioned_hierarchy, conditioned_tree};
use nodesel_core::{
    balanced, select, Constraints, GreedyPolicy, Objective, Selection, SelectionRequest, Selector,
    TwoLevelSelector, Weights,
};
use nodesel_topology::{Hierarchy, NetSnapshot, RouteSketch, RouteTable, Topology};
use std::sync::Arc;
use std::time::Instant;

/// Requested set size throughout the sweep.
const M: usize = 8;

/// Exact flat comparisons (and the sketch-error probe) run only up to
/// this size; beyond it the flat columns are null.
const EXACT_LIMIT: usize = 2000;

/// The two-level axis: (domains, hosts per domain); each domain also
/// carries one hub, so n = domains × (hosts + 1). Large fabrics use
/// 50-node domains: small enough that the two probe solves stay well
/// under a millisecond, at the cost of exceeding
/// `route_approx::MAX_INTER_DOMAINS` at n = 100k (the sketch then
/// drops its inter-domain matrix and approximates with border legs
/// only — select latency is unaffected).
const FABRICS: [(usize, usize); 5] = [(20, 9), (100, 9), (200, 9), (200, 49), (2000, 49)];

fn flat_value(objective: Objective, sel: &Selection) -> f64 {
    match objective {
        Objective::Compute => sel.quality.min_cpu,
        Objective::Communication => sel.quality.min_bw,
        Objective::Balanced(_) => sel.score,
    }
}

/// Median of the wall-clock samples, in microseconds.
fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2] * 1e6
}

/// Mean relative error of the landmark bandwidth sketch against exact
/// bottleneck routing, over one sampled host per domain (all
/// cross-domain pairs, up to 16 domains).
fn sketch_bw_error(topo: &Topology, snap: &NetSnapshot) -> f64 {
    let hier = Hierarchy::new(topo);
    let sketch = RouteSketch::build(&hier, snap);
    let samples: Vec<_> = (0..hier.num_domains().min(16))
        .map(|d| hier.domain(d).computes()[0])
        .collect();
    let table = RouteTable::build_for_sources(topo, samples.iter().copied());
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, &a) in samples.iter().enumerate() {
        for &b in &samples[i + 1..] {
            let exact = table
                .bottleneck_bw_in(snap, a, b)
                .expect("connected fabric");
            if exact > 0.0 && exact.is_finite() {
                sum += (sketch.approx_bw(&hier, a, b) - exact).abs() / exact;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Panics unless `doc` carries the scaling section this bench (and the
/// CI smoke step) promises: the schema-drift tripwire.
fn validate_schema(doc: &serde_json::Value) {
    let s = doc
        .get("scaling")
        .expect("BENCH_scaling.json lost its scaling section");
    for key in ["smoke", "m", "iters", "flat_growth", "rows"] {
        assert!(s.get(key).is_some(), "scaling section lost `{key}`");
    }
    for key in ["sizes", "ms", "exponent"] {
        assert!(
            s["flat_growth"].get(key).is_some(),
            "flat_growth lost `{key}`"
        );
    }
    let rows = s["rows"].as_array().expect("scaling rows is an array");
    assert!(!rows.is_empty(), "scaling rows is empty");
    for row in rows {
        for key in [
            "n",
            "domains",
            "objective",
            "prime_ms",
            "reprime_ms",
            "two_level_select_us",
            "two_level_value",
            "flat_select_us",
            "flat_value",
            "rel_error",
            "error_bound_rel",
            "sketch_bw_mean_rel_err",
        ] {
            assert!(row.get(key).is_some(), "scaling row lost `{key}`: {row}");
        }
        let objective = row["objective"].as_str().expect("objective is a string");
        assert!(
            ["max_bandwidth", "balanced"].contains(&objective),
            "unknown objective label {objective:?}"
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let (iters, flat_reps) = if smoke { (5, 2) } else { (51, 5) };

    // --- Flat growth: the §3.2 complexity check. ---
    let growth_sizes: &[usize] = if smoke {
        &[50, 100, 200]
    } else {
        &[50, 100, 200, 400, 800]
    };
    let mut growth_ms = Vec::new();
    eprintln!("\n=== Complexity check (flat balanced selection, m = {M}) ===");
    for &n in growth_sizes {
        let (topo, ids) = conditioned_tree(11, n);
        let m = M.min(ids.len());
        let t = Instant::now();
        for _ in 0..flat_reps {
            balanced(
                &topo,
                m,
                Weights::EQUAL,
                &Constraints::none(),
                None,
                GreedyPolicy::Sweep,
            )
            .unwrap();
        }
        let ms = t.elapsed().as_secs_f64() * 1e3 / flat_reps as f64;
        eprintln!("  n = {n:>4}: {ms:>9.3} ms");
        growth_ms.push(ms);
    }
    let exponent = (growth_ms[growth_ms.len() - 1] / growth_ms[0]).ln()
        / (growth_sizes[growth_sizes.len() - 1] as f64 / growth_sizes[0] as f64).ln();
    eprintln!("  growth exponent ≈ {exponent:.2} (paper claims O(n²))");

    // --- Two-level sweep. ---
    eprintln!("\n=== Two-level selection, m = {M} (median of {iters} steady-state selects) ===");
    eprintln!(
        "{:>7} {:>8} {:<14} {:>10} {:>11} {:>12} {:>12} {:>10} {:>11}",
        "n",
        "domains",
        "objective",
        "prime_ms",
        "reprime_ms",
        "select_us",
        "flat_us",
        "rel_err",
        "bound_rel"
    );
    let mut rows = Vec::new();
    for &(domains, hosts) in &FABRICS {
        let n = domains * (hosts + 1);
        if smoke && n > EXACT_LIMIT {
            continue;
        }
        let (topo, _) = conditioned_hierarchy(11, domains, hosts);
        assert_eq!(topo.node_count(), n);
        let snap = NetSnapshot::capture(Arc::new(topo.clone()));
        let sketch_err = (n <= EXACT_LIMIT).then(|| sketch_bw_error(&topo, &snap));
        for (label, request) in [
            ("max_bandwidth", SelectionRequest::communication(M)),
            ("balanced", SelectionRequest::balanced(M)),
        ] {
            // Warm the heap first: the very first hierarchy build after
            // a fresh 100k-node allocation pays page-fault/zeroing costs
            // 5-20x the rebuild work itself, which would swamp prime_ms.
            {
                let mut warm = TwoLevelSelector::new();
                std::hint::black_box(warm.select(&snap, &request).unwrap());
            }
            let mut two = TwoLevelSelector::new();
            let t = Instant::now();
            two.select(&snap, &request).unwrap();
            let prime_ms = t.elapsed().as_secs_f64() * 1e3;
            let samples = (0..iters)
                .map(|_| {
                    let t = Instant::now();
                    std::hint::black_box(two.select(&snap, &request).unwrap());
                    t.elapsed().as_secs_f64()
                })
                .collect();
            let select_us = median_us(samples);
            // Re-prime on a fresh structure Arc: the cost of a
            // structural epoch (hierarchy, route sketch and summaries
            // rebuilt; the sketch legs and summary scans fan out over
            // the available cores). Median of 3 rebuild cycles.
            let reprime_samples: Vec<f64> = (0..3)
                .map(|_| {
                    let resnap = NetSnapshot::capture(Arc::new(topo.clone()));
                    let t = Instant::now();
                    std::hint::black_box(two.select(&resnap, &request).unwrap());
                    t.elapsed().as_secs_f64()
                })
                .collect();
            let reprime_ms = median_us(reprime_samples) / 1e3;
            let outcome = two.last_outcome().expect("unconstrained multi-domain");
            let achieved = outcome.achieved;
            let error_bound = outcome.error_bound;

            // Exact flat comparison where feasible.
            let flat = (n <= EXACT_LIMIT).then(|| {
                let samples = (0..flat_reps)
                    .map(|_| {
                        let t = Instant::now();
                        std::hint::black_box(select(&topo, &request).unwrap());
                        t.elapsed().as_secs_f64()
                    })
                    .collect();
                let us = median_us(samples);
                (
                    us,
                    flat_value(request.objective, &select(&topo, &request).unwrap()),
                )
            });
            let rel_error = flat.map(|(_, fv)| {
                let regret = if fv <= achieved { 0.0 } else { fv - achieved };
                if fv.is_finite() && fv > 0.0 {
                    regret / fv
                } else {
                    0.0
                }
            });
            let error_bound_rel = flat.map(|(_, fv)| {
                if fv.is_finite() && fv > 0.0 && error_bound.is_finite() {
                    error_bound / fv
                } else {
                    0.0
                }
            });

            eprintln!(
                "{n:>7} {domains:>8} {label:<14} {prime_ms:>10.2} {reprime_ms:>11.2} {select_us:>12.1} {:>12} {:>10} {:>11}",
                flat.map_or("-".into(), |(us, _)| format!("{us:.1}")),
                rel_error.map_or("-".into(), |e| format!("{e:.4}")),
                error_bound_rel.map_or("-".into(), |e| format!("{e:.4}")),
            );
            rows.push(serde_json::json!({
                "n": n,
                "domains": domains,
                "objective": label,
                "prime_ms": prime_ms,
                "reprime_ms": reprime_ms,
                "two_level_select_us": select_us,
                "two_level_value": achieved,
                "flat_select_us": flat.map(|(us, _)| us),
                "flat_value": flat.map(|(_, fv)| fv),
                "rel_error": rel_error,
                "error_bound_rel": error_bound_rel,
                "sketch_bw_mean_rel_err": sketch_err,
            }));
        }
    }

    // Read-modify-write: own only the scaling section so foreign
    // sections survive a re-run, then re-validate.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .filter(|v| v.as_object().is_some())
        .unwrap_or_else(|| serde_json::json!({}));
    doc["scaling"] = serde_json::json!({
        "smoke": smoke,
        "m": M,
        "iters": iters,
        "flat_growth": {
            "sizes": growth_sizes,
            "ms": growth_ms,
            "exponent": exponent,
        },
        "rows": rows,
    });
    validate_schema(&doc);
    match std::fs::write(path, format!("{:#}\n", doc)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let reread: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(path).expect("just wrote the bench summary"))
            .expect("bench summary is valid JSON");
    validate_schema(&reread);
}
