//! Lock-free epoch publication: an arc-swap-style cell for
//! [`Arc<NetSnapshot>`].
//!
//! The collector side calls [`EpochCell::store`] once per epoch; request
//! threads call [`EpochCell::load`] per request. The requirements are
//! asymmetric and both point away from a `RwLock`:
//!
//! * the **writer must never block on readers** (the collector's cadence
//!   is the freshness of every answer), and
//! * **readers must never block each other** (they are the service's
//!   entire throughput).
//!
//! The cell keeps **two slots**, each an `Arc<NetSnapshot>` guarded by a
//! reader count, plus an `active` slot index. Readers pin the active slot
//! (increment its count, re-check `active`, clone the `Arc`, release);
//! a store writes the *inactive* slot — after waiting out the readers
//! still pinning it, which can only be stragglers from one epoch earlier —
//! and then flips `active`. A reader that loses the race (its slot went
//! inactive between the load and the pin) unpins and retries; at most one
//! retry can be forced per store, so loads are wait-free in practice and
//! lock-free always. Writers serialize among themselves with a mutex,
//! which request threads never touch.
//!
//! The re-check makes the pin sound: a slot's count can only rise while
//! the slot is active, a store only writes a slot whose count it has
//! observed at zero *after* the flip made it inactive, so a pinned slot
//! is never written (all orderings are `SeqCst`; the reasoning needs a
//! total order between pin, re-check, flip, and drain).
//!
//! `unsafe` in this crate is confined to this module: the two
//! `UnsafeCell` slot accesses whose exclusion argument is the
//! pin/drain protocol above, stress-tested in `epoch_stress` below.

use nodesel_topology::NetSnapshot;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One slot: a value plus the count of readers currently pinning it.
struct Slot {
    readers: AtomicUsize,
    value: UnsafeCell<Arc<NetSnapshot>>,
}

/// A lock-free publication cell for the latest snapshot epoch.
///
/// [`EpochCell::load`] never blocks and never contends with other
/// loads; [`EpochCell::store`] never waits on current readers (only on
/// stragglers still pinning the previous epoch's slot, bounded by the
/// duration of an `Arc` clone).
pub struct EpochCell {
    slots: [Slot; 2],
    /// Index of the slot readers should pin.
    active: AtomicUsize,
    /// Serializes writers; never touched by `load`.
    writer: Mutex<()>,
}

// SAFETY: the UnsafeCell contents are only written by `store` while it
// holds the writer mutex AND has observed the slot inactive with zero
// readers (see the module docs for why no reader can pin it afterwards);
// readers only clone out of a slot they have pinned. Arc<NetSnapshot> is
// Send + Sync.
unsafe impl Send for EpochCell {}
unsafe impl Sync for EpochCell {}

impl EpochCell {
    /// A cell publishing `initial`.
    pub fn new(initial: Arc<NetSnapshot>) -> Self {
        EpochCell {
            slots: [
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(Arc::clone(&initial)),
                },
                Slot {
                    readers: AtomicUsize::new(0),
                    value: UnsafeCell::new(initial),
                },
            ],
            active: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    /// The currently published snapshot. Lock-free; at most one retry per
    /// concurrent [`EpochCell::store`].
    pub fn load(&self) -> Arc<NetSnapshot> {
        loop {
            let i = self.active.load(SeqCst);
            let slot = &self.slots[i];
            slot.readers.fetch_add(1, SeqCst);
            if self.active.load(SeqCst) == i {
                // Pinned while provably active: the slot cannot be
                // written until we release.
                // SAFETY: see the impl-level comment — a pinned active
                // slot is never written concurrently.
                let value = unsafe { Arc::clone(&*slot.value.get()) };
                slot.readers.fetch_sub(1, SeqCst);
                return value;
            }
            // Lost the race with a store's flip: this pin may be on the
            // slot the *next* store wants to write. Unpin and retry.
            slot.readers.fetch_sub(1, SeqCst);
        }
    }

    /// Publishes `snap` as the new current snapshot. Waits only for
    /// stragglers still pinning the slot retired one epoch ago.
    pub fn store(&self, snap: Arc<NetSnapshot>) {
        // Invariant, not caller-reachable: a poisoned writer mutex means
        // a publisher panicked mid-store; the two-slot protocol's safety
        // argument is void, so escalate (see crate locking notes).
        let _writer = self.writer.lock().expect("epoch writer lock poisoned");
        let inactive = 1 - self.active.load(SeqCst);
        let slot = &self.slots[inactive];
        // Drain stragglers: pins on this slot can only have been taken
        // before the previous flip, and each is held for the duration of
        // one Arc clone — unless its thread was preempted mid-pin, so
        // yield after a short spin instead of burning the quantum.
        let mut spins = 0u32;
        while slot.readers.load(SeqCst) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // SAFETY: the slot is inactive and reader-free, and `active` only
        // moves below, after this write; new pins target the other slot,
        // and a racing reader that pinned this slot via a stale `active`
        // read re-checks and unpins without touching the value.
        unsafe {
            *slot.value.get() = snap;
        }
        self.active.store(inactive, SeqCst);
    }
}

impl std::fmt::Debug for EpochCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("epoch", &self.load().epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;
    use nodesel_topology::NetDelta;
    use std::sync::atomic::AtomicBool;

    fn snapshot() -> Arc<NetSnapshot> {
        let (topo, _) = star(4, 100.0 * MBPS);
        Arc::new(NetSnapshot::capture(Arc::new(topo)))
    }

    #[test]
    fn store_then_load_round_trips() {
        let first = snapshot();
        let cell = EpochCell::new(Arc::clone(&first));
        assert!(Arc::ptr_eq(&cell.load(), &first));
        let second = Arc::new(first.apply(&NetDelta::default()));
        cell.store(Arc::clone(&second));
        assert!(Arc::ptr_eq(&cell.load(), &second));
        let third = Arc::new(second.apply(&NetDelta::default()));
        cell.store(Arc::clone(&third));
        assert!(Arc::ptr_eq(&cell.load(), &third));
    }

    #[test]
    fn epoch_stress() {
        // One writer publishing a monotone epoch stream, many readers
        // asserting they only ever observe valid snapshots with
        // non-decreasing epochs. Runs on miri-less CI as a sanity fuzz;
        // the real argument is the protocol in the module docs.
        let base = snapshot();
        let cell = Arc::new(EpochCell::new(Arc::clone(&base)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    let mut seen = 0u64;
                    while !stop.load(SeqCst) {
                        let snap = cell.load();
                        let e = snap.epoch();
                        assert!(e >= last, "epochs regressed: {e} after {last}");
                        assert_eq!(snap.load_values().len(), 5);
                        last = e;
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();
        let mut current = base;
        for i in 0..2000 {
            current = Arc::new(current.apply(&NetDelta::default()));
            cell.store(Arc::clone(&current));
            if i % 64 == 0 {
                // Give readers a turn on single-core runners.
                std::thread::yield_now();
            }
        }
        stop.store(true, SeqCst);
        let seen: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(seen > 0, "no reader ever observed a snapshot");
        assert_eq!(cell.load().epoch(), 2000);
    }
}
