//! Deterministic discrete-event simulator for networks of time-shared
//! hosts.
//!
//! This crate is the *testbed substitute* for the PPoPP '99 node-selection
//! reproduction: where the paper executed FFT/Airshed/MRI on a physical CMU
//! network (Figure 4), we execute workload models on this simulator. It
//! provides exactly the mechanisms through which background load and
//! traffic slow applications down:
//!
//! * **Processor-sharing hosts** ([`Host`]): `n` equal-priority tasks on a
//!   host of speed `s` each progress at `s/n` — the model underlying the
//!   paper's `cpu = 1/(1+loadavg)` availability formula. Hosts maintain a
//!   UNIX-style damped load average for the measurement layer.
//! * **Max-min fair flows** ([`FlowTable`]): bulk transfers follow their
//!   static route and share directed-link capacity by progressive filling,
//!   the standard fluid model of competing TCP-like transfers. Per-link
//!   octet counters support SNMP-style measurement. Reallocation is
//!   incremental — only the sharing cluster reachable from a changed
//!   flow's path is re-solved, completions come from a lazy-deletion
//!   heap, and flow progress is evaluated closed-form on read — with the
//!   paper-style full recompute kept as a selectable reference oracle
//!   ([`FlowEngine`]).
//! * **A deterministic event engine** ([`Sim`]): integer-nanosecond clock,
//!   stable tie-breaking. One-off actions are closure events; recurring
//!   processes (generators, collectors) are cloneable [`DriverLogic`]
//!   state machines living *inside* the simulator, so a warmed-up run with
//!   no closure pending can be [forked][Sim::fork] into independent
//!   bit-identical continuations — the mechanism behind shared-warmup
//!   paired trials in `nodesel-experiments`. Identical inputs give
//!   identical traces on every platform.
//! * **Fault injection** ([`FaultPlan`], [`install_faults`]): seeded
//!   scheduled and stochastic link flaps, node crash/reboot cycles and
//!   subnet partitions, executed by a fork-safe [`FaultDriver`]. A dead
//!   link drops to zero capacity and starves crossing flows (they stall,
//!   bytes settled, without spinning the event loop); a crashed host
//!   kills its tasks and aborts its endpoint flows, both surfaced to the
//!   app driver ([`Sim::take_killed_tasks`], [`Sim::take_aborted_flows`]).
//!
//! # Example
//!
//! ```
//! use nodesel_simnet::Sim;
//! use nodesel_topology::builders::star;
//! use nodesel_topology::units::MBPS;
//! use std::{cell::RefCell, rc::Rc};
//!
//! let (topo, ids) = star(3, 100.0 * MBPS);
//! let mut sim = Sim::new(topo);
//! let done = Rc::new(RefCell::new(0.0));
//! let d = done.clone();
//! // 100 Mbit over a 100 Mbps path: finishes at t = 1s.
//! sim.start_transfer(ids[0], ids[1], 100.0 * MBPS, move |s| {
//!     *d.borrow_mut() = s.now().as_secs_f64();
//! });
//! sim.run();
//! assert!((*done.borrow() - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod engine;
mod fault;
mod flows;
mod gate;
mod host;
mod parallel;
pub mod time;
mod trace;

pub use engine::{Callback, DriverId, DriverLogic, Sim, SimStats, DEFAULT_LOAD_AVG_TAU};
pub use fault::{
    install_faults, install_faults_at, FaultAction, FaultDriver, FaultPlan, FaultStats, Flap,
    FlapTarget,
};
pub use flows::{DirLink, FlowEngine, FlowId, FlowTable};
pub use host::{Host, TaskId};
pub use parallel::ParallelSim;
pub use time::{EventKey, SimTime};
pub use trace::TraceEvent;
