//! Ablation A3: the §3.3 generalizations.
//!
//! * Greedy termination policy: Figure 3 verbatim (`Faithful`) vs the
//!   sweep-to-exhaustion variant (`Sweep`) — solution quality and cost.
//! * Priority factors: how the selected set shifts as computation or
//!   communication is prioritized.
//! * Fixed bandwidth floors: maximize CPU under a minimum-bandwidth
//!   constraint.

use criterion::{criterion_group, criterion_main, Criterion};
use nodesel_bench::conditioned_tree;
use nodesel_core::{balanced, max_compute, Constraints, GreedyPolicy, Weights};
use nodesel_topology::units::MBPS;
use std::hint::black_box;

fn bench_policy(c: &mut Criterion) {
    // Solution-quality comparison across many seeded instances.
    let instances = 200;
    let mut faithful_wins = 0usize;
    let mut sweep_wins = 0usize;
    let mut ties = 0usize;
    let mut faithful_score = 0.0;
    let mut sweep_score = 0.0;
    for seed in 0..instances {
        let (topo, ids) = conditioned_tree(seed, 30);
        let m = 5.min(ids.len());
        let f = balanced(
            &topo,
            m,
            Weights::EQUAL,
            &Constraints::none(),
            None,
            GreedyPolicy::Faithful,
        )
        .unwrap();
        let s = balanced(
            &topo,
            m,
            Weights::EQUAL,
            &Constraints::none(),
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        faithful_score += f.score;
        sweep_score += s.score;
        if (f.score - s.score).abs() < 1e-12 {
            ties += 1;
        } else if f.score > s.score {
            faithful_wins += 1;
        } else {
            sweep_wins += 1;
        }
    }
    eprintln!("\n=== Ablation: greedy policy (200 random 30-node instances, m=5) ===");
    eprintln!(
        "  ties {ties}, sweep better {sweep_wins}, faithful better {faithful_wins} (faithful can never win: it is a prefix of the sweep)"
    );
    eprintln!(
        "  mean balanced score: faithful {:.3}, sweep {:.3}",
        faithful_score / instances as f64,
        sweep_score / instances as f64
    );

    // Priority-factor sweep on one instance.
    let (topo, ids) = conditioned_tree(3, 30);
    let m = 5.min(ids.len());
    eprintln!("=== Ablation: priority factor sweep (one 30-node instance) ===");
    for factor in [4.0f64, 2.0, 1.0] {
        let sel = balanced(
            &topo,
            m,
            Weights::compute_priority(factor),
            &Constraints::none(),
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        eprintln!(
            "  compute priority {factor}: min cpu {:.2}, min bw fraction {:.2}",
            sel.quality.min_cpu, sel.quality.min_bwfraction
        );
    }
    for factor in [2.0f64, 4.0] {
        let sel = balanced(
            &topo,
            m,
            Weights::comm_priority(factor),
            &Constraints::none(),
            None,
            GreedyPolicy::Sweep,
        )
        .unwrap();
        eprintln!(
            "  comm priority {factor}: min cpu {:.2}, min bw fraction {:.2}",
            sel.quality.min_cpu, sel.quality.min_bwfraction
        );
    }

    // Fixed bandwidth floor.
    eprintln!("=== Ablation: fixed bandwidth floor (maximize CPU subject to bw ≥ B) ===");
    for floor_mbps in [10.0f64, 30.0, 60.0] {
        let constraints = Constraints {
            min_bandwidth: Some(floor_mbps * MBPS),
            ..Constraints::none()
        };
        match max_compute(&topo, m, &constraints) {
            Ok(sel) => eprintln!(
                "  floor {floor_mbps:>4.0} Mbps: min cpu {:.2}, min bw {:.1} Mbps",
                sel.quality.min_cpu,
                sel.quality.min_bw / MBPS
            ),
            Err(e) => eprintln!("  floor {floor_mbps:>4.0} Mbps: {e}"),
        }
    }

    let mut group = c.benchmark_group("ablation_policy");
    let (topo, ids) = conditioned_tree(3, 100);
    let m = 8.min(ids.len());
    for policy in [GreedyPolicy::Faithful, GreedyPolicy::Sweep] {
        group.bench_function(format!("{policy:?}"), |b| {
            b.iter(|| {
                black_box(
                    balanced(&topo, m, Weights::EQUAL, &Constraints::none(), None, policy).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
