//! Churn harness: random fault plans and sample loss hammer the full
//! measurement-to-selection pipeline — simulator, degraded collector,
//! and all three selection algorithms — for hundreds of epochs per case
//! (each case sees thousands of fault toggles and sample draws). The
//! stack must never panic, and every published value must be either
//! fresh or flagged stale with a monotonically-decaying confidence:
//!
//! * `staleness == 0` ⟺ `confidence == 1.0` (fresh);
//! * `confidence` equals `staleness_confidence(staleness)` exactly, and
//!   strictly falls while the staleness run grows;
//! * a value whose staleness covered the whole polling interval is
//!   bit-frozen at its last good sample;
//! * a node or link believed down contributes exactly zero
//!   `effective_cpu` / `available` bandwidth;
//! * no published metric is ever NaN;
//! * selectors may return `Err` (e.g. too few nodes left) but never
//!   panic, and any selection they do return uses only nodes believed
//!   available.

use nodesel_core::{selector_for, SelectError, SelectionRequest, Selector};
use nodesel_experiments::Testbed;
use nodesel_loadgen::{install_load, LoadConfig};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::{install_faults, FaultAction, FaultPlan, Flap, FlapTarget, FlowEngine};
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::{staleness_confidence, Direction, EdgeId, NetMetrics, NetSnapshot, NodeId};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Epochs per case and sim-seconds per epoch. The collector samples
/// every 2 s, so one case covers 600 s ≈ 300 collection rounds over
/// ~60 metric slots — roughly 18k sample draws — plus the fault
/// toggles of up to 4 flap processes with second-scale dwells.
const EPOCHS: usize = 150;
const EPOCH_SECS: f64 = 4.0;
const PERIOD: f64 = 2.0;

/// Staleness at or above this covers every collector tick a polling
/// interval can contain (`EPOCH_SECS / PERIOD`, plus one for boundary
/// ticks), so the value must be bit-frozen since the previous poll.
const FROZEN_AT: u32 = (EPOCH_SECS / PERIOD) as u32 + 1;

fn decode_plan(
    raw_sched: &[(u32, u8, u16)],
    raw_flaps: &[(u8, u16, u32, u32)],
    seed: u64,
) -> FaultPlan {
    let tb = cmu_testbed();
    let edges: Vec<EdgeId> = tb.topo.edge_ids().collect();
    let machines: Vec<NodeId> = tb.machines.clone();
    let pick_e = |i: u16| edges[i as usize % edges.len()];
    let pick_m = |i: u16| machines[i as usize % machines.len()];
    let group = |i: u16| -> Vec<NodeId> {
        (0..1 + i as usize % 4)
            .map(|k| machines[(i as usize + k) % machines.len()])
            .collect()
    };
    FaultPlan {
        scheduled: raw_sched
            .iter()
            .map(|&(t, kind, idx)| {
                let action = match kind % 6 {
                    0 => FaultAction::LinkDown(pick_e(idx)),
                    1 => FaultAction::LinkUp(pick_e(idx)),
                    2 => FaultAction::CrashNode(pick_m(idx)),
                    3 => FaultAction::RebootNode(pick_m(idx)),
                    4 => FaultAction::Partition(group(idx)),
                    _ => FaultAction::Heal(group(idx)),
                };
                (t as f64 * 0.1, action)
            })
            .collect(),
        flaps: raw_flaps
            .iter()
            .map(|&(kind, idx, up, down)| Flap {
                target: if kind % 2 == 0 {
                    FlapTarget::Link(pick_e(idx))
                } else {
                    FlapTarget::Node(pick_m(idx))
                },
                mean_up: 0.5 + up as f64 * 0.01,
                mean_down: 0.5 + down as f64 * 0.01,
            })
            .collect(),
        seed,
    }
}

/// The freshness contract between two successive snapshots of the same
/// entity: exact confidence law, strict decay while the run grows, and
/// a bit-frozen value once the staleness run covers the whole interval.
fn check_freshness(
    staleness: u32,
    confidence: f64,
    value_bits: u64,
    prev: Option<(u32, f64, u64)>,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        confidence.to_bits(),
        staleness_confidence(staleness).to_bits(),
        "confidence must follow the staleness law"
    );
    if staleness == 0 {
        prop_assert_eq!(confidence.to_bits(), 1.0f64.to_bits());
    } else {
        prop_assert!(confidence < 1.0, "stale data must be flagged");
    }
    if let Some((p_stale, p_conf, p_bits)) = prev {
        if staleness > p_stale {
            if staleness <= 4096 {
                prop_assert!(confidence < p_conf, "confidence must decay while stale");
            }
            if staleness >= p_stale + FROZEN_AT {
                prop_assert_eq!(
                    value_bits,
                    p_bits,
                    "a fully-missed interval must freeze the value"
                );
            }
        }
    }
    Ok(())
}

fn engines() -> impl Strategy<Value = FlowEngine> {
    prop_oneof![Just(FlowEngine::Incremental), Just(FlowEngine::Reference)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn churn_degrades_gracefully_and_never_panics(
        seed in 0u64..1_000_000,
        loss in 0.0f64..0.45,
        raw_sched in proptest::collection::vec((0u32..6000, 0u8..6, 0u16..1024), 0..12),
        raw_flaps in proptest::collection::vec(
            (0u8..2, 0u16..1024, 0u32..1500, 0u32..1500), 1..5),
        engine in engines(),
    ) {
        let testbed = Testbed::cmu();
        let mut sim = testbed.sim(engine);
        let remos = Remos::install(
            &mut sim,
            CollectorConfig {
                period: PERIOD,
                window: 8,
                loss,
                seed,
                ..CollectorConfig::default()
            },
        );
        install_load(
            &mut sim,
            &testbed.machines,
            LoadConfig::paper_defaults(),
            seed ^ 0x10AD,
        );
        install_faults(&mut sim, &decode_plan(&raw_sched, &raw_flaps, seed ^ 0xFA));

        // One selector per objective; refresh incrementally while primed,
        // re-prime with a full select after any failure.
        let requests = [
            SelectionRequest::compute(4),
            SelectionRequest::communication(4),
            SelectionRequest::balanced(4),
        ];
        let mut selectors: Vec<(Box<dyn Selector>, &SelectionRequest, bool)> = requests
            .iter()
            .map(|req| (selector_for(req.objective), req, false))
            .collect();
        let mut prev: Option<NetSnapshot> = None;

        for _epoch in 0..EPOCHS {
            sim.run_for(EPOCH_SECS);
            let _ = sim.take_killed_tasks();
            let _ = sim.take_aborted_flows();
            let snap = remos.snapshot(&sim);
            let topo = snap.structure_arc().clone();

            for n in topo.node_ids() {
                prop_assert!(!snap.load_avg(n).is_nan());
                prop_assert!(!snap.effective_cpu(n).is_nan());
                if !snap.node_available(n) {
                    prop_assert_eq!(snap.effective_cpu(n), 0.0, "down node {:?}", n);
                }
                check_freshness(
                    snap.node_staleness(n),
                    snap.node_confidence(n),
                    snap.load_avg(n).to_bits(),
                    prev.as_ref().map(|p| {
                        (p.node_staleness(n), p.node_confidence(n), p.load_avg(n).to_bits())
                    }),
                )?;
            }
            for e in topo.edge_ids() {
                for dir in [Direction::AtoB, Direction::BtoA] {
                    prop_assert!(!snap.used(e, dir).is_nan());
                    prop_assert!(!snap.available(e, dir).is_nan());
                    if !snap.link_available(e) {
                        prop_assert_eq!(snap.available(e, dir), 0.0, "down link {:?}", e);
                    }
                    check_freshness(
                        snap.link_staleness(e),
                        snap.link_confidence(e),
                        snap.used(e, dir).to_bits(),
                        prev.as_ref().map(|p| {
                            (p.link_staleness(e), p.link_confidence(e), p.used(e, dir).to_bits())
                        }),
                    )?;
                }
            }

            for (sel, req, primed) in selectors.iter_mut() {
                let result = if *primed {
                    sel.refresh(&snap, &snap.diff(prev.as_ref().unwrap()))
                } else {
                    sel.select(&snap, req)
                };
                match result {
                    Ok(selection) => {
                        *primed = true;
                        prop_assert_eq!(selection.nodes.len(), req.count);
                        for &n in &selection.nodes {
                            prop_assert!(
                                snap.node_available(n),
                                "selected a node believed down: {:?}", n
                            );
                        }
                    }
                    // Heavy churn can leave too few usable nodes; an
                    // error is the contract, a panic is the bug.
                    Err(SelectError::NotEnoughNodes { .. } | SelectError::Unsatisfiable) => {
                        *primed = false;
                    }
                    Err(other) => {
                        return Err(TestCaseError::fail(format!(
                            "unexpected selection error under churn: {other:?}"
                        )));
                    }
                }
            }
            prev = Some(snap);
        }
    }
}
