//! Substrate bench: raw event throughput of the simulator, serial vs
//! parallel, across the thread axis. Not a paper artifact; it bounds how
//! much experimentation per CPU-second the harness can deliver and
//! tracks the parallel engine's scaling across PRs.
//!
//! Scenarios:
//! * `cmu` — the paper's single-testbed network. One connected domain,
//!   so the parallel engine falls back to serial: the honest ~1× case,
//!   reported as measured.
//! * `fed8` / `fed32` — disconnected federations (8/32 subnets). Every
//!   domain is an island, so shards run one unbounded window each: the
//!   best case for the parallel engine.
//! * `fed32-trunk` — the 32 subnets chained into one connected
//!   federation by 2 ms trunks: shards advance in conservative windows,
//!   paying the barrier synchronization the disconnected case skips.
//!
//! Every parallel run is asserted to dispatch exactly the serial event
//! count (the engine's bit-exactness contract). Results land in
//! `BENCH_simnet.json` under `"throughput"` as machine-readable rows
//! `{scenario, engine, threads, events, events_per_sec, speedup}`; the
//! file is read-modify-written so the `flow_engine` sections survive,
//! and the written document is validated against the expected schema
//! (the CI smoke step fails on drift). `--test`/`--smoke` runs a short
//! horizon; measured numbers are whatever this machine gives — a
//! single-core runner shows no parallel speedup, and that is reported
//! as measured, not corrected.

use nodesel_bench::{federated, federated_domains};
use nodesel_loadgen::{
    install_load, install_load_at, install_traffic, install_traffic_at, LoadConfig, TrafficConfig,
};
use nodesel_simnet::{ParallelSim, Sim};
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::ShardPlan;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn traffic_at(mult: f64) -> TrafficConfig {
    let mut t = TrafficConfig::paper_defaults();
    t.arrival_rate *= mult;
    t
}

/// The paper's CMU testbed under Table-1-like activity; one domain.
fn build_cmu() -> (Sim, ShardPlan) {
    let tb = cmu_testbed();
    let plan = ShardPlan::components(&tb.topo);
    let mut sim = Sim::new(tb.topo.clone());
    sim.set_partition(plan.node_domain());
    install_load(&mut sim, &tb.machines, LoadConfig::paper_defaults(), 1);
    install_traffic(&mut sim, &tb.machines, traffic_at(4.0), 2);
    (sim, plan)
}

/// A `k`-subnet federation with intensified per-subnet load and
/// traffic, every generator homed inside its own domain.
fn build_fed(k: usize, trunk: Option<f64>) -> (Sim, ShardPlan) {
    let (topo, subnets) = federated(k, trunk);
    let plan = match trunk {
        None => ShardPlan::components(&topo),
        Some(_) => ShardPlan::from_assignment(&topo, &federated_domains(&topo)),
    };
    assert_eq!(plan.num_domains() as usize, k);
    let mut sim = Sim::new(topo);
    sim.set_partition(plan.node_domain());
    for (s, hosts) in subnets.iter().enumerate() {
        install_load_at(
            &mut sim,
            hosts,
            LoadConfig::paper_defaults(),
            1_000 + s as u64,
        );
        install_traffic_at(&mut sim, hosts[0], hosts, traffic_at(4.0), 100 + s as u64);
    }
    (sim, plan)
}

/// One run; returns (events dispatched, wall seconds, ran sharded).
fn run_once(
    build: &dyn Fn() -> (Sim, ShardPlan),
    threads: usize,
    sim_seconds: f64,
) -> (u64, f64, bool) {
    let (sim, plan) = build();
    if threads <= 1 {
        let mut sim = sim;
        let t = Instant::now();
        sim.run_for(sim_seconds);
        (sim.stats().events, t.elapsed().as_secs_f64(), false)
    } else {
        let mut par = ParallelSim::new(sim, &plan, threads);
        let t = Instant::now();
        par.run_for(sim_seconds);
        (
            par.stats().events,
            t.elapsed().as_secs_f64(),
            par.is_parallel(),
        )
    }
}

/// Median wall time over `iters` runs (events are identical per run).
fn measure(
    build: &dyn Fn() -> (Sim, ShardPlan),
    threads: usize,
    sim_seconds: f64,
    iters: usize,
) -> (u64, f64, bool) {
    let mut events = 0;
    let mut sharded = false;
    let mut walls: Vec<f64> = (0..iters)
        .map(|_| {
            let (ev, wall, sh) = run_once(build, threads, sim_seconds);
            events = ev;
            sharded = sh;
            wall
        })
        .collect();
    walls.sort_by(f64::total_cmp);
    (events, walls[walls.len() / 2], sharded)
}

/// Panics unless `doc` carries the throughput section this bench (and
/// the CI smoke step) promises: the schema-drift tripwire.
fn validate_schema(doc: &serde_json::Value) {
    let t = doc
        .get("throughput")
        .expect("BENCH_simnet.json lost its throughput section");
    for key in ["sim_seconds", "smoke", "threads_axis", "rows"] {
        assert!(t.get(key).is_some(), "throughput section lost `{key}`");
    }
    let rows = t["rows"].as_array().expect("throughput rows is an array");
    assert!(!rows.is_empty(), "throughput rows is empty");
    for row in rows {
        for key in [
            "scenario",
            "engine",
            "threads",
            "events",
            "events_per_sec",
            "speedup",
        ] {
            assert!(row.get(key).is_some(), "throughput row lost `{key}`: {row}");
        }
        let engine = row["engine"].as_str().expect("engine is a string");
        assert!(
            ["serial", "parallel", "serial-fallback"].contains(&engine),
            "unknown engine label {engine:?}"
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test" || a == "--smoke");
    let (sim_seconds, iters) = if smoke { (20.0, 1) } else { (300.0, 3) };

    type Scenario = Box<dyn Fn() -> (Sim, ShardPlan)>;
    let scenarios: [(&str, Scenario); 4] = [
        ("cmu", Box::new(build_cmu)),
        ("fed8", Box::new(|| build_fed(8, None))),
        ("fed32", Box::new(|| build_fed(32, None))),
        ("fed32-trunk", Box::new(|| build_fed(32, Some(2e-3)))),
    ];

    eprintln!("\n=== simnet throughput: serial vs parallel, {sim_seconds} simulated seconds ===");
    eprintln!(
        "{:<12} {:>16} {:>8} {:>10} {:>14} {:>8}",
        "scenario", "engine", "threads", "events", "events/sec", "speedup"
    );
    let mut rows = Vec::new();
    for (name, build) in &scenarios {
        let mut serial_eps = 0.0;
        let mut serial_events = 0;
        for threads in THREADS {
            let (events, wall, sharded) = measure(build.as_ref(), threads, sim_seconds, iters);
            let eps = events as f64 / wall;
            if threads == 1 {
                serial_eps = eps;
                serial_events = events;
            } else {
                assert_eq!(
                    events, serial_events,
                    "parallel run diverged from serial event count on {name}"
                );
            }
            let engine = match (threads, sharded) {
                (1, _) => "serial",
                (_, true) => "parallel",
                (_, false) => "serial-fallback",
            };
            let speedup = eps / serial_eps;
            eprintln!(
                "{name:<12} {engine:>16} {threads:>8} {events:>10} {eps:>14.0} {speedup:>7.2}x"
            );
            rows.push(serde_json::json!({
                "scenario": name,
                "engine": engine,
                "threads": threads,
                "events": events,
                "events_per_sec": eps,
                "speedup": speedup,
            }));
        }
    }

    // Read-modify-write: own only the throughput section so the
    // flow_engine sections survive a re-run, then re-validate.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_simnet.json");
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .filter(|v| v.as_object().is_some())
        .unwrap_or_else(|| serde_json::json!({}));
    doc["throughput"] = serde_json::json!({
        "sim_seconds": sim_seconds,
        "smoke": smoke,
        "threads_axis": THREADS,
        "rows": rows,
    });
    validate_schema(&doc);
    match std::fs::write(path, format!("{:#}\n", doc)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let reread: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(path).expect("just wrote the bench summary"))
            .expect("bench summary is valid JSON");
    validate_schema(&reread);
}
