//! The Airshed pollution-modeling workload (paper §4.3, "6 hour
//! simulation", and Subhlok et al., IPPS '98).
//!
//! Airshed alternates horizontal transport with chemistry over a 3-D
//! concentration grid. In the HPF implementation each simulated hour
//! performs transport (distributed by columns), a transpose of the
//! concentration field, chemistry (distributed by grid points), a second
//! transpose back, and a gather/broadcast pair for boundary conditions and
//! checkpointing — all barrier-separated, making it loosely synchronous
//! like the FFT but with a heavier communication share.
//!
//! # Calibration
//!
//! The paper reports 150 s for the 6-hour simulation on 5 unloaded nodes.
//! We model the redistributed concentration field at 160 MB (1.28 Gbit) and
//! split each hour into transport + chemistry compute phases sized so the
//! unloaded 5-node run on the Figure 4 testbed lands on the reference. The
//! resulting communication share (~21% on 5 nodes) exceeds the FFT's,
//! matching Table 1's larger relative traffic impact on Airshed.

use crate::phased::{Phase, PhaseProgram};
use nodesel_topology::units::MBPS;

/// Simulated hours the paper ran.
pub const PAPER_HOURS: usize = 6;

/// Bits of the redistributed concentration field (160 MB).
pub const FIELD_BITS: f64 = 1_280.0 * MBPS;

/// Bits of the boundary/checkpoint structure (10 MB).
pub const BOUNDARY_BITS: f64 = 80.0 * MBPS;

/// Transport-phase compute volume per hour, reference-CPU-seconds (total
/// across nodes).
pub const TRANSPORT_WORK: f64 = 40.0;

/// Chemistry-phase compute volume per hour, reference-CPU-seconds (total
/// across nodes). Chemistry dominates, as in the real code.
pub const CHEMISTRY_WORK: f64 = 58.0;

/// The Airshed program for a given number of simulated hours.
pub fn airshed_program(hours: usize) -> PhaseProgram {
    PhaseProgram {
        name: "Airshed",
        iterations: hours,
        phases: vec![
            Phase::Compute {
                work: TRANSPORT_WORK,
            },
            Phase::AllToAll { bits: FIELD_BITS },
            Phase::Compute {
                work: CHEMISTRY_WORK,
            },
            Phase::AllToAll { bits: FIELD_BITS },
            Phase::Gather {
                root: 0,
                bits: BOUNDARY_BITS,
            },
            Phase::Broadcast {
                root: 0,
                bits: BOUNDARY_BITS,
            },
        ],
    }
}

/// The paper's configuration: a 6-hour simulation.
pub fn airshed() -> PhaseProgram {
    airshed_program(PAPER_HOURS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phased::launch_phased;
    use nodesel_simnet::Sim;
    use nodesel_topology::testbeds::cmu_testbed;

    #[test]
    fn unloaded_reference_time_matches_paper() {
        let tb = cmu_testbed();
        let nodes: Vec<_> = (1..=5).map(|i| tb.m(i)).collect();
        let mut sim = Sim::new(tb.topo);
        let h = launch_phased(&mut sim, airshed(), &nodes);
        sim.run();
        let t = h.elapsed().unwrap();
        // Paper reference: 150 s on the unloaded testbed.
        assert!((t - 150.0).abs() < 6.0, "unloaded Airshed took {t}");
    }

    #[test]
    fn communication_share_exceeds_ffts() {
        let air = airshed();
        let fft = crate::fft::fft_1k();
        let share =
            |p: &PhaseProgram| p.total_bits() / (p.total_bits() + p.total_work() * 100.0 * MBPS);
        assert!(share(&air) > share(&fft));
    }
}
