//! Baseline selection strategies the paper compares against.
//!
//! The Table 1 experiments alternate the automatic procedure with **random
//! node selection**, noting that "random node selection and node selection
//! based on static network properties give virtually identical performance
//! on a small testbed with all high speed links", so random also stands in
//! for static strategies. Both baselines are provided.

use crate::quality::evaluate;
use crate::request::Constraints;
use crate::weights::Weights;
use crate::SelectError;
use crate::{balanced, GreedyPolicy, Selection};
use nodesel_topology::{NodeId, Topology};
use rand::Rng;

/// Selects `m` compute nodes uniformly at random (without regard to load or
/// traffic), as the paper's experimental baseline.
pub fn random_selection<R: Rng + ?Sized>(
    topo: &Topology,
    m: usize,
    rng: &mut R,
) -> Result<Selection, SelectError> {
    if m == 0 {
        return Err(SelectError::ZeroCount);
    }
    let mut pool: Vec<NodeId> = topo.compute_nodes().collect();
    if pool.len() < m {
        return Err(SelectError::NotEnoughNodes {
            eligible: pool.len(),
            requested: m,
        });
    }
    // Partial Fisher-Yates: the first m slots become the sample.
    for i in 0..m {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    let mut nodes: Vec<NodeId> = pool[..m].to_vec();
    nodes.sort_unstable();
    let routes = topo.routes();
    let quality = evaluate(topo, &routes, &nodes, None);
    Ok(Selection {
        score: quality.score(Weights::EQUAL),
        nodes,
        quality,
        iterations: 0,
    })
}

/// Static selection: the balanced algorithm applied to the *unloaded*
/// topology (capacities and structure only). This is what a scheduler that
/// knows the network map but not its dynamic state would pick.
pub fn static_selection(topo: &Topology, m: usize) -> Result<Selection, SelectError> {
    let mut clean = topo.clone();
    for n in clean.compute_nodes().collect::<Vec<_>>() {
        clean.set_load_avg(n, 0.0);
    }
    for e in clean.edge_ids().collect::<Vec<_>>() {
        for dir in [
            nodesel_topology::Direction::AtoB,
            nodesel_topology::Direction::BtoA,
        ] {
            clean.set_link_used(e, dir, 0.0);
        }
    }
    let sel = balanced(
        &clean,
        m,
        Weights::EQUAL,
        &Constraints::none(),
        None,
        GreedyPolicy::Sweep,
    )?;
    // Re-evaluate the statically chosen set under the *actual* conditions.
    let routes = topo.routes();
    let quality = evaluate(topo, &routes, &sel.nodes, None);
    Ok(Selection {
        score: quality.score(Weights::EQUAL),
        nodes: sel.nodes,
        quality,
        iterations: sel.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_selection_is_valid_and_seeded() {
        let (topo, _) = star(8, 100.0 * MBPS);
        let pick = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            random_selection(&topo, 4, &mut rng).unwrap().nodes
        };
        let a = pick(1);
        assert_eq!(a.len(), 4);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert_eq!(a, pick(1));
        // Different seeds eventually differ.
        assert!((2..10).any(|s| pick(s) != a));
    }

    #[test]
    fn random_selection_rejects_oversized_requests() {
        let (topo, _) = star(3, 100.0 * MBPS);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            random_selection(&topo, 4, &mut rng),
            Err(SelectError::NotEnoughNodes { .. })
        ));
    }

    #[test]
    fn static_selection_ignores_load() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        // Heavy load on n0/n1: a dynamic selector would avoid them, static
        // cannot see it.
        topo.set_load_avg(ids[0], 10.0);
        topo.set_load_avg(ids[1], 10.0);
        let sel = static_selection(&topo, 2).unwrap();
        // The reported quality reflects the true (loaded) conditions.
        if sel.nodes.contains(&ids[0]) || sel.nodes.contains(&ids[1]) {
            assert!(sel.quality.min_cpu < 0.5);
        }
        assert_eq!(sel.nodes.len(), 2);
    }
}
