//! Regenerates **Figure 2** (the max-bandwidth selection algorithm): runs
//! it on a conditioned testbed, shows the selected set, and benchmarks the
//! algorithm across topology sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nodesel_bench::conditioned_tree;
use nodesel_core::{max_bandwidth, Constraints};
use nodesel_topology::units::MBPS;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    // Demonstrate the algorithm once on a conditioned tree.
    let (topo, _) = conditioned_tree(7, 40);
    let sel = max_bandwidth(&topo, 6, &Constraints::none()).unwrap();
    eprintln!("\n=== Figure 2: max-bandwidth selection (40-node tree, m=6) ===");
    eprintln!(
        "selected {:?}; min pairwise available bandwidth {:.1} Mbps after {} edge-deletion rounds",
        sel.nodes.iter().map(|n| n.index()).collect::<Vec<_>>(),
        sel.quality.min_bw / MBPS,
        sel.iterations
    );

    let mut group = c.benchmark_group("fig2_maxbw");
    for nodes in [20usize, 40, 80, 160, 320] {
        let (topo, ids) = conditioned_tree(7, nodes);
        let m = 6.min(ids.len());
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(max_bandwidth(&topo, m, &Constraints::none()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
