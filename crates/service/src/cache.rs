//! The delta-invalidated selection cache.
//!
//! Entries are keyed by [`CanonicalRequest`] and pinned to the cache's
//! **current epoch and ledger version**: a lookup only ever answers for
//! the `(epoch, version)` pair the entry was verified against, so a hit
//! is bit-identical to a fresh solve on that residual network by
//! construction. Both axes advance by the same mechanism, footprint
//! intersection:
//!
//! * When the collector publishes epoch `e+1` with its [`NetDelta`],
//!   [`SelectionCache::advance`] walks the map once and keeps every
//!   entry whose recorded [`SelectionFootprint`] is disjoint from the
//!   delta — the footprint's soundness contract (`nodesel-core`) is
//!   exactly "a disjoint delta leaves the answer's bits unchanged", so
//!   survivors are *carried forward* to the new epoch instead of being
//!   re-solved. Everything else is evicted; a structural change (or a
//!   publication without a delta) flushes the map wholesale.
//! * When the ledger admits, releases, or moves a job,
//!   [`SelectionCache::advance_ledger`] does the same walk against the
//!   change's **touched-entity delta** (the claim's nodes and route
//!   links): a cached answer whose footprint is disjoint from the claim
//!   provably cannot see the residual change, so it survives into the
//!   new version.
//!
//! Capacity is bounded with least-recently-used eviction (a logical
//! clock bumped per touch, evict-minimum on overflow), so a service
//! under an adversarial spec stream degrades to solve-per-request
//! instead of growing without bound.

use crate::stats::CacheCounters;
use nodesel_core::SelectError;
use nodesel_core::{CanonicalRequest, Selection, SelectionFootprint};
use nodesel_topology::NetDelta;
use std::collections::HashMap;

/// One cached answer: the result bits, the entities they depend on, and
/// an LRU stamp.
#[derive(Debug, Clone)]
struct CacheEntry {
    result: Result<Selection, SelectError>,
    footprint: SelectionFootprint,
    last_used: u64,
}

/// An epoch-and-version-pinned, footprint-invalidated, LRU-bounded
/// selection cache.
#[derive(Debug)]
pub struct SelectionCache {
    epoch: u64,
    ledger_version: u64,
    map: HashMap<CanonicalRequest, CacheEntry>,
    capacity: usize,
    clock: u64,
    /// Eviction/carry accounting, drained into [`crate::ServiceStats`].
    pub counters: CacheCounters,
}

impl SelectionCache {
    /// An empty cache pinned to `epoch` at ledger version 0, holding at
    /// most `capacity` entries (0 disables caching entirely).
    pub fn new(epoch: u64, capacity: usize) -> Self {
        SelectionCache {
            epoch,
            ledger_version: 0,
            map: HashMap::new(),
            capacity,
            clock: 0,
            counters: CacheCounters::default(),
        }
    }

    /// The epoch every resident entry is valid for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The ledger version every resident entry is valid for.
    pub fn ledger_version(&self) -> u64 {
        self.ledger_version
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The cached answer for `canon` at `(epoch, version)`, if resident.
    /// A request pinned to a different epoch or ledger version than the
    /// cache never hits: the entry would answer for the wrong residual
    /// network.
    pub fn lookup(
        &mut self,
        epoch: u64,
        version: u64,
        canon: &CanonicalRequest,
    ) -> Option<Result<Selection, SelectError>> {
        if epoch != self.epoch || version != self.ledger_version {
            return None;
        }
        self.clock += 1;
        let clock = self.clock;
        let entry = self.map.get_mut(canon)?;
        entry.last_used = clock;
        Some(entry.result.clone())
    }

    /// Inserts an answer solved against `(epoch, version)`. A solve that
    /// raced a publication or a ledger change (its pin is no longer
    /// current) is dropped — caching it would serve a stale residual
    /// network's bits as the current one's.
    pub fn insert(
        &mut self,
        epoch: u64,
        version: u64,
        canon: CanonicalRequest,
        result: Result<Selection, SelectError>,
        footprint: SelectionFootprint,
    ) {
        if epoch != self.epoch || version != self.ledger_version {
            self.counters.stale_inserts += 1;
            return;
        }
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&canon) {
            // LRU eviction: drop the least recently touched entry.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.counters.capacity_evictions += 1;
            }
        }
        self.map.insert(
            canon,
            CacheEntry {
                result,
                footprint,
                last_used: self.clock,
            },
        );
    }

    /// Re-pins the cache to `epoch` (the ledger version is unchanged).
    /// With a delta, entries whose footprint is disjoint survive
    /// (carried forward); the rest are evicted. Without one (structural
    /// change, or an untracked jump), everything is flushed.
    pub fn advance(&mut self, epoch: u64, delta: Option<&NetDelta>) {
        match delta {
            Some(delta) => {
                let before = self.map.len();
                self.map.retain(|_, e| !e.footprint.invalidated_by(delta));
                self.counters.delta_evictions += (before - self.map.len()) as u64;
                self.counters.carried_forward += self.map.len() as u64;
            }
            None => {
                self.counters.flushes += 1;
                self.counters.delta_evictions += self.map.len() as u64;
                self.map.clear();
            }
        }
        self.epoch = epoch;
    }

    /// Re-pins the cache to ledger `version` (the epoch is unchanged).
    /// `touched` marks the entities the ledger change perturbs (the
    /// admitted/released/moved claim's nodes and links, magnitudes
    /// irrelevant): entries whose footprint is disjoint from it survive
    /// into the new version, the rest are evicted as `ledger_evictions`.
    /// `None` flushes wholesale (an untracked ledger change, e.g. a
    /// structural rebind).
    pub fn advance_ledger(&mut self, version: u64, touched: Option<&NetDelta>) {
        match touched {
            Some(touched) => {
                let before = self.map.len();
                self.map.retain(|_, e| !e.footprint.invalidated_by(touched));
                self.counters.ledger_evictions += (before - self.map.len()) as u64;
                self.counters.carried_forward += self.map.len() as u64;
            }
            None => {
                self.counters.flushes += 1;
                self.counters.ledger_evictions += self.map.len() as u64;
                self.map.clear();
            }
        }
        self.ledger_version = version;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_core::{LinkFootprint, SelectionRequest};
    use nodesel_topology::NodeId;

    fn canon(count: usize) -> CanonicalRequest {
        CanonicalRequest::new(&SelectionRequest::compute(count))
    }

    fn selection(nodes: Vec<usize>) -> Result<Selection, SelectError> {
        Ok(Selection {
            nodes: nodes.into_iter().map(NodeId::from_index).collect(),
            quality: nodesel_core::Quality {
                min_cpu: 1.0,
                min_bw: 1.0,
                min_bwfraction: 1.0,
            },
            score: 1.0,
            iterations: 1,
        })
    }

    fn footprint(nodes: Vec<usize>) -> SelectionFootprint {
        SelectionFootprint {
            replayable: true,
            nodes: nodes.into_iter().map(NodeId::from_index).collect(),
            links: LinkFootprint::Edges(Vec::new()),
        }
    }

    #[test]
    fn lookup_is_epoch_pinned() {
        let mut cache = SelectionCache::new(3, 16);
        cache.insert(3, 0, canon(2), selection(vec![0, 1]), footprint(vec![0, 1]));
        assert!(cache.lookup(3, 0, &canon(2)).is_some());
        assert!(cache.lookup(2, 0, &canon(2)).is_none());
        assert!(cache.lookup(4, 0, &canon(2)).is_none());
    }

    #[test]
    fn lookup_is_ledger_version_pinned() {
        let mut cache = SelectionCache::new(0, 16);
        cache.insert(0, 0, canon(2), selection(vec![0, 1]), footprint(vec![0, 1]));
        assert!(cache.lookup(0, 0, &canon(2)).is_some());
        assert!(cache.lookup(0, 1, &canon(2)).is_none());
    }

    #[test]
    fn stale_epoch_inserts_are_dropped() {
        let mut cache = SelectionCache::new(5, 16);
        cache.insert(4, 0, canon(2), selection(vec![0]), footprint(vec![0]));
        assert!(cache.is_empty());
        assert_eq!(cache.counters.stale_inserts, 1);
        // A stale ledger version is dropped the same way.
        cache.insert(5, 3, canon(2), selection(vec![0]), footprint(vec![0]));
        assert!(cache.is_empty());
        assert_eq!(cache.counters.stale_inserts, 2);
    }

    #[test]
    fn advance_carries_disjoint_entries_and_evicts_touched() {
        let mut cache = SelectionCache::new(0, 16);
        cache.insert(0, 0, canon(1), selection(vec![0]), footprint(vec![0]));
        cache.insert(0, 0, canon(2), selection(vec![5, 6]), footprint(vec![5, 6]));
        let delta = NetDelta {
            nodes: vec![(NodeId::from_index(5), 2.0)],
            ..NetDelta::default()
        };
        cache.advance(1, Some(&delta));
        assert!(
            cache.lookup(1, 0, &canon(1)).is_some(),
            "disjoint entry survives"
        );
        assert!(
            cache.lookup(1, 0, &canon(2)).is_none(),
            "touched entry evicted"
        );
        assert_eq!(cache.counters.delta_evictions, 1);
        assert_eq!(cache.counters.carried_forward, 1);
    }

    #[test]
    fn ledger_advance_mirrors_epoch_advance() {
        let mut cache = SelectionCache::new(0, 16);
        cache.insert(0, 0, canon(1), selection(vec![0]), footprint(vec![0]));
        cache.insert(0, 0, canon(2), selection(vec![5, 6]), footprint(vec![5, 6]));
        // An admitted claim touching node 5: only the disjoint entry
        // survives, and the survivor answers at the new version.
        let touched = NetDelta {
            nodes: vec![(NodeId::from_index(5), 1.0)],
            ..NetDelta::default()
        };
        cache.advance_ledger(1, Some(&touched));
        assert!(cache.lookup(0, 1, &canon(1)).is_some());
        assert!(cache.lookup(0, 1, &canon(2)).is_none());
        assert!(
            cache.lookup(0, 0, &canon(1)).is_none(),
            "old version never hits"
        );
        assert_eq!(cache.counters.ledger_evictions, 1);
        // A rebind-style untracked change flushes.
        cache.advance_ledger(2, None);
        assert!(cache.is_empty());
        assert_eq!(cache.counters.flushes, 1);
    }

    #[test]
    fn advance_without_delta_flushes() {
        let mut cache = SelectionCache::new(0, 16);
        cache.insert(0, 0, canon(1), selection(vec![0]), footprint(vec![0]));
        cache.advance(1, None);
        assert!(cache.is_empty());
        assert_eq!(cache.counters.flushes, 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut cache = SelectionCache::new(0, 2);
        cache.insert(0, 0, canon(1), selection(vec![0]), footprint(vec![0]));
        cache.insert(0, 0, canon(2), selection(vec![1]), footprint(vec![1]));
        // Touch canon(1) so canon(2) is the LRU victim.
        assert!(cache.lookup(0, 0, &canon(1)).is_some());
        cache.insert(0, 0, canon(3), selection(vec![2]), footprint(vec![2]));
        assert!(cache.lookup(0, 0, &canon(1)).is_some());
        assert!(cache.lookup(0, 0, &canon(2)).is_none());
        assert!(cache.lookup(0, 0, &canon(3)).is_some());
        assert_eq!(cache.counters.capacity_evictions, 1);
    }
}
