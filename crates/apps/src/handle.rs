//! Completion handles for launched applications.

use nodesel_simnet::SimTime;
use std::cell::Cell;
use std::rc::Rc;

/// Observer for a running application instance.
///
/// The simulator drives the application through events; the handle lets the
/// experiment driver poll for completion and read the turnaround time.
#[derive(Debug, Clone)]
pub struct AppHandle {
    started: SimTime,
    finished: Rc<Cell<Option<SimTime>>>,
}

impl AppHandle {
    pub(crate) fn new(started: SimTime) -> (AppHandle, Rc<Cell<Option<SimTime>>>) {
        let finished = Rc::new(Cell::new(None));
        (
            AppHandle {
                started,
                finished: finished.clone(),
            },
            finished,
        )
    }

    /// Simulation time at which the application was launched.
    pub fn started_at(&self) -> SimTime {
        self.started
    }

    /// Completion time, if the application has finished.
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished.get()
    }

    /// True when the application has finished.
    pub fn is_finished(&self) -> bool {
        self.finished.get().is_some()
    }

    /// Turnaround time in seconds, if finished.
    pub fn elapsed(&self) -> Option<f64> {
        self.finished.get().map(|f| f.seconds_since(self.started))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_lifecycle() {
        let (h, fin) = AppHandle::new(SimTime::from_secs(3));
        assert!(!h.is_finished());
        assert_eq!(h.elapsed(), None);
        fin.set(Some(SimTime::from_secs(10)));
        assert!(h.is_finished());
        assert_eq!(h.elapsed(), Some(7.0));
        assert_eq!(h.started_at(), SimTime::from_secs(3));
        assert_eq!(h.finished_at(), Some(SimTime::from_secs(10)));
    }
}
