//! Evaluating how good a candidate node set is.
//!
//! The algorithms reason about graph components, but the quantity an
//! application actually experiences is defined over the *selected set*: the
//! most loaded selected node, and the most congested fixed route between
//! any pair of selected nodes (paper §3.2, "the (fractional) computation
//! and communication capacities for a set of nodes are determined by the
//! most loaded node and the path with the maximum traffic"). This module
//! computes that ground truth, and is also the arbiter used by the tests
//! that compare greedy selection against exhaustive search.

use crate::weights::Weights;
use nodesel_topology::{NetMetrics, NodeId, RouteTable, Routes, Topology};

/// The measured quality of a node set under current network conditions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Minimum available effective CPU fraction over the set
    /// (`cpu × speed`, normalized to the reference node type).
    pub min_cpu: f64,
    /// Minimum pairwise bottleneck available bandwidth, bits/s
    /// (`+∞` for singleton sets).
    pub min_bw: f64,
    /// Minimum pairwise bottleneck *fractional* bandwidth
    /// (`1.0` for singleton sets). When a reference bandwidth is supplied
    /// the fraction is `bw / reference`, otherwise per-link `bw / maxbw`.
    pub min_bwfraction: f64,
}

impl Quality {
    /// The balanced objective of Figure 3, generalized with priority
    /// weights: `min(min_cpu / w.compute, min_bwfraction / w.comm)`.
    pub fn score(&self, weights: Weights) -> f64 {
        (self.min_cpu / weights.compute).min(self.min_bwfraction / weights.comm)
    }
}

/// Evaluates a node set against a topology snapshot using its static
/// routes.
///
/// `reference_bandwidth` selects the §3.3 heterogeneous-links rule: when
/// `Some(r)`, a path's fractional bandwidth is `available / r`; when
/// `None`, each link contributes `bw / maxbw` (homogeneous case).
///
/// Panics when `nodes` is empty or contains a network node.
pub fn evaluate(
    topo: &Topology,
    routes: &Routes<'_>,
    nodes: &[NodeId],
    reference_bandwidth: Option<f64>,
) -> Quality {
    evaluate_in(topo, routes.table(), nodes, reference_bandwidth)
}

/// [`evaluate`] over any annotated-metric representation — the measured
/// [`Topology`] itself or a versioned
/// [`NetSnapshot`](nodesel_topology::NetSnapshot) — so the one-shot and
/// incremental selection paths score candidates with the same monomorphic
/// arithmetic. `table` must hold a BFS row for every node in `nodes`.
pub fn evaluate_in<T: NetMetrics>(
    net: &T,
    table: &RouteTable,
    nodes: &[NodeId],
    reference_bandwidth: Option<f64>,
) -> Quality {
    assert!(!nodes.is_empty(), "cannot evaluate an empty selection");
    let mut min_cpu = f64::INFINITY;
    for &n in nodes {
        assert!(
            net.structure().node(n).is_compute(),
            "selection contains network node {n:?}"
        );
        min_cpu = min_cpu.min(net.effective_cpu(n));
    }
    let mut min_bw = f64::INFINITY;
    let mut min_bwfraction = 1.0f64;
    for (i, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(i + 1) {
            let bw = table
                .bottleneck_bw_in(net, a, b)
                .expect("selected nodes must be connected");
            min_bw = min_bw.min(bw);
            let fraction = match reference_bandwidth {
                Some(r) => bw / r,
                None => table
                    .bottleneck_bwfactor_in(net, a, b)
                    .expect("selected nodes must be connected"),
            };
            min_bwfraction = min_bwfraction.min(fraction);
        }
    }
    Quality {
        min_cpu,
        min_bw,
        min_bwfraction,
    }
}

/// Precomputed pairwise route metrics over a fixed candidate pool.
///
/// [`evaluate`] walks the route table once per pair *per subset*, which the
/// exhaustive oracle would repeat `O(C(n, m))` times. This cache pays the
/// `O(n²)` route walks once, after which a subset grows one element at a
/// time with `O(m)` array reads — the basis of the oracle's incremental
/// prefix evaluation and its best-so-far pruning.
///
/// Indices are positions into the pool slice passed to
/// [`PairwiseCache::new`], not [`NodeId`]s.
#[derive(Debug, Clone)]
pub struct PairwiseCache {
    len: usize,
    cpu: Vec<f64>,
    bw: Vec<f64>,
    bwfraction: Vec<f64>,
    connected: Vec<bool>,
}

impl PairwiseCache {
    /// Builds the cache for `pool` under the same
    /// `reference_bandwidth` rule as [`evaluate`].
    pub fn new(
        topo: &Topology,
        routes: &Routes<'_>,
        pool: &[NodeId],
        reference_bandwidth: Option<f64>,
    ) -> Self {
        let len = pool.len();
        let cpu = pool.iter().map(|&n| topo.node(n).effective_cpu()).collect();
        let mut bw = vec![f64::INFINITY; len * len];
        let mut bwfraction = vec![1.0f64; len * len];
        let mut connected = vec![true; len * len];
        for i in 0..len {
            for j in i + 1..len {
                match routes.bottleneck_bw(pool[i], pool[j]) {
                    Ok(b) => {
                        let fraction = match reference_bandwidth {
                            Some(r) => b / r,
                            None => routes
                                .bottleneck_bwfactor(pool[i], pool[j])
                                .expect("bottleneck_bw succeeded on the same pair"),
                        };
                        bw[i * len + j] = b;
                        bw[j * len + i] = b;
                        bwfraction[i * len + j] = fraction;
                        bwfraction[j * len + i] = fraction;
                    }
                    Err(_) => {
                        connected[i * len + j] = false;
                        connected[j * len + i] = false;
                    }
                }
            }
        }
        PairwiseCache {
            len,
            cpu,
            bw,
            bwfraction,
            connected,
        }
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for an empty pool.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Effective CPU of pool member `i`.
    pub fn cpu(&self, i: usize) -> f64 {
        self.cpu[i]
    }

    /// Whether pool members `i` and `j` have a route.
    pub fn connected(&self, i: usize, j: usize) -> bool {
        self.connected[i * self.len + j]
    }

    /// Bottleneck available bandwidth between `i` and `j` (`+∞` when
    /// `i == j`).
    pub fn bw(&self, i: usize, j: usize) -> f64 {
        self.bw[i * self.len + j]
    }

    /// Bottleneck fractional bandwidth between `i` and `j` (`1.0` when
    /// `i == j`).
    pub fn bwfraction(&self, i: usize, j: usize) -> f64 {
        self.bwfraction[i * self.len + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::units::MBPS;
    use nodesel_topology::Direction;

    /// a --100-- s --100-- b, with c on s over a 10 Mbps link.
    fn topo() -> (Topology, [NodeId; 4]) {
        let mut t = Topology::new();
        let a = t.add_compute_node("a", 1.0);
        let s = t.add_network_node("s");
        let b = t.add_compute_node("b", 1.0);
        let c = t.add_compute_node("c", 1.0);
        t.add_link(a, s, 100.0 * MBPS);
        t.add_link(s, b, 100.0 * MBPS);
        t.add_link(s, c, 10.0 * MBPS);
        (t, [a, s, b, c])
    }

    #[test]
    fn unloaded_pair_is_perfect() {
        let (t, n) = topo();
        let r = t.routes();
        let q = evaluate(&t, &r, &[n[0], n[2]], None);
        assert_eq!(q.min_cpu, 1.0);
        assert_eq!(q.min_bw, 100.0 * MBPS);
        assert_eq!(q.min_bwfraction, 1.0);
        assert_eq!(q.score(Weights::default()), 1.0);
    }

    #[test]
    fn weak_link_caps_bandwidth() {
        let (t, n) = topo();
        let r = t.routes();
        let q = evaluate(&t, &r, &[n[0], n[3]], None);
        assert_eq!(q.min_bw, 10.0 * MBPS);
        // bw/maxbw per link: the 10 Mbps link is unloaded => fraction 1.0.
        assert_eq!(q.min_bwfraction, 1.0);
        // With a 100 Mbps reference link it is only 10%.
        let q = evaluate(&t, &r, &[n[0], n[3]], Some(100.0 * MBPS));
        assert!((q.min_bwfraction - 0.1).abs() < 1e-12);
    }

    #[test]
    fn loaded_node_caps_cpu() {
        let (mut t, n) = topo();
        t.set_load_avg(n[2], 3.0);
        let r = t.routes();
        let q = evaluate(&t, &r, &[n[0], n[2]], None);
        assert_eq!(q.min_cpu, 0.25);
    }

    #[test]
    fn traffic_caps_fraction() {
        let (mut t, n) = topo();
        let e0 = t.edge_ids().next().unwrap();
        t.set_link_used(e0, Direction::AtoB, 60.0 * MBPS);
        let r = t.routes();
        let q = evaluate(&t, &r, &[n[0], n[2]], None);
        assert_eq!(q.min_bw, 40.0 * MBPS);
        assert!((q.min_bwfraction - 0.4).abs() < 1e-12);
    }

    #[test]
    fn singleton_has_infinite_bandwidth() {
        let (t, n) = topo();
        let r = t.routes();
        let q = evaluate(&t, &r, &[n[0]], None);
        assert!(q.min_bw.is_infinite());
        assert_eq!(q.min_bwfraction, 1.0);
    }

    #[test]
    fn pairwise_cache_matches_evaluate() {
        let (mut t, n) = topo();
        let e0 = t.edge_ids().next().unwrap();
        t.set_link_used(e0, Direction::AtoB, 60.0 * MBPS);
        t.set_load_avg(n[2], 1.0);
        let r = t.routes();
        let pool = [n[0], n[2], n[3]];
        for reference in [None, Some(100.0 * MBPS)] {
            let cache = PairwiseCache::new(&t, &r, &pool, reference);
            assert_eq!(cache.len(), 3);
            for i in 0..pool.len() {
                assert_eq!(cache.cpu(i), t.node(pool[i]).effective_cpu());
                for j in 0..pool.len() {
                    if i == j {
                        continue;
                    }
                    assert!(cache.connected(i, j));
                    let q = evaluate(&t, &r, &[pool[i], pool[j]], reference);
                    assert_eq!(cache.bw(i, j), q.min_bw);
                    assert_eq!(cache.bwfraction(i, j), q.min_bwfraction);
                }
            }
        }
    }

    #[test]
    fn pairwise_cache_flags_disconnected_pairs() {
        let mut t = Topology::new();
        let a = t.add_compute_node("a", 1.0);
        let b = t.add_compute_node("b", 1.0);
        let c = t.add_compute_node("c", 1.0);
        t.add_link(a, b, 10.0 * MBPS);
        let r = t.routes();
        let cache = PairwiseCache::new(&t, &r, &[a, b, c], None);
        assert!(cache.connected(0, 1));
        assert!(!cache.connected(0, 2));
        assert!(!cache.connected(2, 1));
    }

    #[test]
    fn score_applies_priority_weights() {
        let q = Quality {
            min_cpu: 0.5,
            min_bw: 1.0,
            min_bwfraction: 0.3,
        };
        // Equal weights: bandwidth binds.
        assert_eq!(q.score(Weights::default()), 0.3);
        // Compute prioritized 2x: cpu 0.5 counts as 0.25 => cpu binds.
        assert_eq!(
            q.score(Weights {
                compute: 2.0,
                comm: 1.0
            }),
            0.25
        );
    }

    #[test]
    fn fast_node_raises_effective_cpu() {
        let mut t = Topology::new();
        let a = t.add_compute_node("fast", 2.0);
        let b = t.add_compute_node("ref", 1.0);
        t.add_link(a, b, 100.0 * MBPS);
        t.set_load_avg(a, 1.0); // cpu 0.5, speed 2 => effective 1.0
        let r = t.routes();
        let q = evaluate(&t, &r, &[a, b], None);
        assert_eq!(q.min_cpu, 1.0);
    }
}
