//! Chaos study driver: the placement service under a six-phase fault
//! timeline (crash, collector stall, partition, flapping) plus a
//! concurrent soak probe, with the summary committed to
//! `BENCH_chaos.json`. `--smoke` shrinks the run for CI and validates
//! the committed numbers without overwriting them.

use nodesel_experiments::chaos::{
    render_chaos_table, run_chaos, run_soak, ChaosConfig, ChaosOutcome, SoakReport, CHAOS_PHASES,
};

/// Panics unless `doc` carries the chaos section this driver (and the
/// CI smoke step) promises: the schema-drift tripwire plus the headline
/// robustness claims the README quotes.
fn validate_schema(doc: &serde_json::Value) {
    let c = doc
        .get("chaos")
        .expect("BENCH_chaos.json lost its chaos section");
    for key in [
        "smoke",
        "seed",
        "tick_s",
        "phase_len_s",
        "burst",
        "target_jobs",
        "degrade",
        "phases",
        "faults",
        "repair",
        "reconcile",
        "totals",
        "soak",
    ] {
        assert!(c.get(key).is_some(), "chaos section lost `{key}`");
    }
    for key in ["soft_staleness_s", "hard_staleness_s", "min_confidence"] {
        assert!(c["degrade"].get(key).is_some(), "degrade lost `{key}`");
    }
    let phases = c["phases"].as_array().expect("chaos phases is an array");
    assert_eq!(phases.len(), 6, "chaos timeline has six phases");
    for cell in phases {
        for key in [
            "phase",
            "requests",
            "completed",
            "shed",
            "refused",
            "degraded",
            "admits",
            "admit_refusals",
        ] {
            assert!(cell.get(key).is_some(), "chaos phase lost `{key}`: {cell}");
        }
    }
    let by_phase = |label: &str, key: &str| {
        phases
            .iter()
            .find(|p| p["phase"].as_str() == Some(label))
            .and_then(|p| p[key].as_u64())
            .unwrap_or_else(|| panic!("chaos phase {label} missing `{key}`"))
    };
    for key in [
        "incidents",
        "resolved",
        "unresolved",
        "p50_s",
        "p99_s",
        "max_s",
        "bound_s",
    ] {
        assert!(c["repair"].get(key).is_some(), "repair lost `{key}`");
    }
    for key in [
        "sweeps", "healthy", "held", "repaired", "released", "deferred",
    ] {
        assert!(c["reconcile"].get(key).is_some(), "reconcile lost `{key}`");
    }
    for key in [
        "requests",
        "completed",
        "shed",
        "refused",
        "degraded",
        "silent_stale",
        "stats_balanced",
    ] {
        assert!(c["totals"].get(key).is_some(), "totals lost `{key}`");
    }
    for key in ["requests", "answered", "shed", "balanced"] {
        assert!(c["soak"].get(key).is_some(), "soak lost `{key}`");
    }

    // Headline claims: honesty and bounded repair, not raw speed.
    assert_eq!(
        c["totals"]["silent_stale"].as_u64(),
        Some(0),
        "the study's contract is zero silent-stale answers"
    );
    assert_eq!(
        c["totals"]["stats_balanced"].as_bool(),
        Some(true),
        "request accounting identity must balance"
    );
    assert_eq!(
        c["soak"]["balanced"].as_bool(),
        Some(true),
        "soak accounting identity must balance"
    );
    assert_eq!(c["repair"]["unresolved"].as_u64(), Some(0));
    let p99 = c["repair"]["p99_s"].as_f64().expect("p99_s is a number");
    let bound = c["repair"]["bound_s"]
        .as_f64()
        .expect("bound_s is a number");
    assert!(p99 <= bound, "p99 repair {p99}s exceeds bound {bound}s");
    // The stall phase must actually exercise degraded-mode serving:
    // refusals for bandwidth-sensitive work, flagged answers for the
    // rest — and the deadline mix must shed somewhere.
    assert!(by_phase("stall", "refused") > 0, "stall refused nothing");
    assert!(by_phase("stall", "degraded") > 0, "stall flagged nothing");
    let shed: u64 = phases.iter().filter_map(|p| p["shed"].as_u64()).sum();
    assert!(shed > 0, "the deadline mix shed nothing");
}

fn phase_json(outcome: &ChaosOutcome) -> Vec<serde_json::Value> {
    CHAOS_PHASES
        .iter()
        .map(|phase| {
            let c = &outcome.phases[phase.index()];
            serde_json::json!({
                "phase": phase.label(),
                "requests": c.requests,
                "completed": c.completed,
                "shed": c.shed,
                "refused": c.refused,
                "degraded": c.degraded,
                "admits": c.admits,
                "admit_refusals": c.admit_refusals,
            })
        })
        .collect()
}

fn section_json(
    smoke: bool,
    config: &ChaosConfig,
    outcome: &ChaosOutcome,
    soak: &SoakReport,
) -> serde_json::Value {
    let totals = outcome
        .phases
        .iter()
        .fold((0u64, 0u64, 0u64, 0u64, 0u64), |acc, p| {
            (
                acc.0 + p.requests,
                acc.1 + p.completed,
                acc.2 + p.shed,
                acc.3 + p.refused,
                acc.4 + p.degraded,
            )
        });
    serde_json::json!({
        "smoke": smoke,
        "seed": config.seed,
        "tick_s": config.tick,
        "phase_len_s": config.phase_len,
        "burst": config.burst,
        "target_jobs": config.target_jobs,
        "degrade": {
            "soft_staleness_s": config.degrade.soft_staleness,
            "hard_staleness_s": config.degrade.hard_staleness,
            "min_confidence": config.degrade.min_confidence,
        },
        "phases": phase_json(outcome),
        "faults": {
            "link_downs": outcome.faults.link_downs,
            "link_ups": outcome.faults.link_ups,
            "crashes": outcome.faults.crashes,
            "reboots": outcome.faults.reboots,
        },
        "repair": {
            "incidents": outcome.repair.incidents,
            "resolved": outcome.repair.resolved,
            "unresolved": outcome.repair.unresolved,
            "samples_s": outcome.repair.samples,
            "p50_s": outcome.repair.p50,
            "p99_s": outcome.repair.p99,
            "max_s": outcome.repair.max,
            "bound_s": config.repair_bound,
        },
        "reconcile": {
            "sweeps": outcome.reconcile.sweeps,
            "healthy": outcome.reconcile.healthy,
            "held": outcome.reconcile.held,
            "repaired": outcome.reconcile.repaired,
            "released": outcome.reconcile.released,
            "deferred": outcome.reconcile.deferred,
        },
        "totals": {
            "requests": totals.0,
            "completed": totals.1,
            "shed": totals.2,
            "refused": totals.3,
            "degraded": totals.4,
            "silent_stale": outcome.silent_stale,
            "stats_balanced": outcome.stats.balanced(),
        },
        "soak": {
            "requests": soak.requests,
            "answered": soak.answered,
            "shed": soak.shed,
            "balanced": soak.balanced,
        },
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let config = if smoke {
        ChaosConfig::smoke()
    } else {
        ChaosConfig::default()
    };

    println!("=== Chaos study: deadlines, degraded serving, reconciliation under faults ===");
    println!(
        "6 x {:.0}s phases, {:.0}s tick, burst {}, target {} jobs; degrade soft {:.0}s / hard {:.0}s / conf {:.2}",
        config.phase_len,
        config.tick,
        config.burst,
        config.target_jobs,
        config.degrade.soft_staleness,
        config.degrade.hard_staleness,
        config.degrade.min_confidence
    );
    let outcome = run_chaos(&config);
    print!("{}", render_chaos_table(&outcome));
    let soak = run_soak(8, 50);
    println!(
        "soak: {} requests over 8 threads, {} answered, {} shed, identity {}",
        soak.requests,
        soak.answered,
        soak.shed,
        if soak.balanced { "balanced" } else { "BROKEN" }
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        .filter(|v| v.as_object().is_some())
        .unwrap_or_else(|| serde_json::json!({}));
    let section = section_json(smoke, &config, &outcome, &soak);
    if smoke {
        // CI validates the shape and the headline claims without
        // overwriting the committed full-run numbers.
        let mut probe = doc.clone();
        probe["chaos"] = section;
        validate_schema(&probe);
        println!("smoke run: schema and headline claims validated, {path} left untouched");
        if doc.get("chaos").is_some() {
            validate_schema(&doc);
        }
        return;
    }
    doc["chaos"] = section;
    validate_schema(&doc);
    match std::fs::write(path, format!("{:#}\n", doc)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    let reread: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(path).expect("just wrote the study summary"))
            .expect("study summary is valid JSON");
    validate_schema(&reread);
}
