//! The annotated topology graph.

use crate::link::Direction;
use crate::{EdgeId, Link, Node, NodeId, NodeKind, TopologyError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The logical network topology graph `G(n)` of paper §3.1.
///
/// Nodes and edges are stored in dense vectors; [`NodeId`]/[`EdgeId`] are
/// indices into them. Iteration order is insertion order, which keeps every
/// algorithm in the workspace deterministic.
///
/// A `Topology` is a *snapshot*: the measurement layer (`nodesel-remos`)
/// produces one per query, annotated with the load averages and link
/// utilizations it observed, and the selection algorithms consume it
/// read-only through [`crate::GraphView`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Adjacency: for each node, (edge, neighbor) pairs in insertion order.
    adjacency: Vec<Vec<(EdgeId, NodeId)>>,
    /// Optional hierarchy: `domains[node index]` is the node's domain id,
    /// with ids contiguous from 0. `None` for flat topologies. Serialized,
    /// so hierarchical testbeds survive save/load; old files without the
    /// field parse as flat.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    domains: Option<Vec<u16>>,
    #[serde(skip)]
    name_index: HashMap<String, NodeId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a compute node with the given relative `speed` (1.0 = reference
    /// node type). Panics on duplicate names; use [`Topology::try_add_node`]
    /// for fallible construction.
    pub fn add_compute_node(&mut self, name: impl Into<String>, speed: f64) -> NodeId {
        self.try_add_node(name, NodeKind::Compute, speed)
            .expect("duplicate node name")
    }

    /// Adds a network (router/switch) node.
    pub fn add_network_node(&mut self, name: impl Into<String>) -> NodeId {
        self.try_add_node(name, NodeKind::Network, 0.0)
            .expect("duplicate node name")
    }

    /// Fallible node insertion.
    pub fn try_add_node(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
        speed: f64,
    ) -> Result<NodeId, TopologyError> {
        let name = name.into();
        if self.name_index.contains_key(&name) {
            return Err(TopologyError::DuplicateName(name));
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(Node::new(name.clone(), kind, speed));
        self.adjacency.push(Vec::new());
        self.name_index.insert(name, id);
        Ok(id)
    }

    /// Adds a symmetric link with equal capacity in both directions and zero
    /// latency. Returns its id.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, capacity: f64) -> EdgeId {
        self.add_link_full(a, b, capacity, capacity, 0.0)
    }

    /// Adds a link with per-direction capacities (`a→b`, `b→a`) and one-way
    /// latency in seconds. Self-loops are rejected.
    pub fn add_link_full(
        &mut self,
        a: NodeId,
        b: NodeId,
        cap_ab: f64,
        cap_ba: f64,
        latency: f64,
    ) -> EdgeId {
        assert!(a != b, "self-loops are not meaningful in a topology graph");
        assert!(a.index() < self.nodes.len() && b.index() < self.nodes.len());
        let id = EdgeId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(Link::new(a, b, cap_ab, cap_ba, latency));
        self.adjacency[a.index()].push((id, b));
        self.adjacency[b.index()].push((id, a));
        id
    }

    /// Number of nodes (compute + network).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of compute nodes.
    pub fn compute_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_compute()).count()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Borrow a link.
    pub fn link(&self, id: EdgeId) -> &Link {
        &self.links[id.index()]
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// All edge ids in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.links.len()).map(|i| EdgeId(i as u32))
    }

    /// Ids of compute nodes, in insertion order.
    pub fn compute_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids().filter(|&id| self.node(id).is_compute())
    }

    /// `(edge, neighbor)` pairs incident to `n`, in insertion order.
    pub fn neighbors(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        &self.adjacency[n.index()]
    }

    /// Degree of a node.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Result<NodeId, TopologyError> {
        self.name_index
            .get(name)
            .copied()
            .ok_or_else(|| TopologyError::UnknownName(name.to_string()))
    }

    /// Sets the load average of a compute node (measurement-layer hook).
    pub fn set_load_avg(&mut self, n: NodeId, load_avg: f64) {
        assert!(load_avg >= 0.0, "load average must be non-negative");
        assert!(
            self.nodes[n.index()].is_compute(),
            "load average only applies to compute nodes"
        );
        self.nodes[n.index()].load_avg = load_avg;
    }

    /// Sets the consumed bandwidth of one direction of a link
    /// (measurement-layer hook).
    pub fn set_link_used(&mut self, e: EdgeId, dir: Direction, bits_per_sec: f64) {
        self.links[e.index()].set_used(dir, bits_per_sec);
    }

    /// Assigns every node to a hierarchy domain. Domain ids must be
    /// contiguous from 0 and cover every node; call after construction is
    /// complete (nodes added later are not assigned, which
    /// [`crate::io::validate`] rejects).
    ///
    /// # Panics
    ///
    /// Panics when `domains` does not carry exactly one id per node or
    /// when the ids leave a gap (some id in `0..max` has no members).
    pub fn set_domains(&mut self, domains: Vec<u16>) {
        assert_eq!(
            domains.len(),
            self.nodes.len(),
            "one domain id per node required"
        );
        if let Some(&max) = domains.iter().max() {
            let mut seen = vec![false; max as usize + 1];
            for &d in &domains {
                seen[d as usize] = true;
            }
            if let Some(gap) = seen.iter().position(|&s| !s) {
                panic!("domain ids are not contiguous: domain {gap} has no members");
            }
        }
        self.domains = Some(domains);
    }

    /// The hierarchy domain assignment, if one was set: one id per node.
    pub fn domains(&self) -> Option<&[u16]> {
        self.domains.as_deref()
    }

    /// Removes the domain assignment, returning the topology to flat.
    pub fn clear_domains(&mut self) {
        self.domains = None;
    }

    /// True when the graph is connected (ignoring isolated topologies with
    /// zero nodes, which count as connected).
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(_, m) in self.neighbors(n) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.nodes.len()
    }

    /// True when the graph contains no cycles (a forest). The fundamental
    /// algorithms of §3.2 assume an acyclic graph; cyclic graphs are handled
    /// through static routing (§3.3), see [`crate::RouteTable`].
    pub fn is_acyclic(&self) -> bool {
        // A forest has exactly (nodes - components) edges, counting each
        // undirected edge once. Parallel edges between the same pair count
        // as a cycle, which this formulation captures automatically.
        let components = {
            let view = crate::GraphView::new(self);
            view.components().len()
        };
        self.links.len() == self.nodes.len().saturating_sub(components)
    }

    /// Rebuilds the name index after deserialization.
    ///
    /// `serde` skips the index (it is derivable); call this after
    /// deserializing if you need name lookups.
    pub fn rebuild_name_index(&mut self) {
        self.name_index = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.clone(), NodeId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MBPS;

    fn line3() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_compute_node("a", 1.0);
        let s = t.add_network_node("s");
        let b = t.add_compute_node("b", 1.0);
        t.add_link(a, s, 100.0 * MBPS);
        t.add_link(s, b, 100.0 * MBPS);
        (t, a, s, b)
    }

    #[test]
    fn counts_and_lookup() {
        let (t, a, s, b) = line3();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.compute_node_count(), 2);
        assert_eq!(t.node_by_name("a").unwrap(), a);
        assert_eq!(t.node_by_name("s").unwrap(), s);
        assert_eq!(t.node_by_name("b").unwrap(), b);
        assert!(matches!(
            t.node_by_name("zz"),
            Err(TopologyError::UnknownName(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add_compute_node("x", 1.0);
        assert!(matches!(
            t.try_add_node("x", NodeKind::Compute, 1.0),
            Err(TopologyError::DuplicateName(_))
        ));
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (t, a, s, b) = line3();
        assert_eq!(t.degree(a), 1);
        assert_eq!(t.degree(s), 2);
        assert_eq!(t.degree(b), 1);
        let (e, n) = t.neighbors(a)[0];
        assert_eq!(n, s);
        assert!(t.link(e).touches(a) && t.link(e).touches(s));
    }

    #[test]
    fn connectivity_and_acyclicity() {
        let (mut t, a, _, b) = line3();
        assert!(t.is_connected());
        assert!(t.is_acyclic());
        // Adding a chord creates a cycle.
        t.add_link(a, b, 10.0 * MBPS);
        assert!(!t.is_acyclic());
        assert!(t.is_connected());
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut t = Topology::new();
        t.add_compute_node("a", 1.0);
        t.add_compute_node("b", 1.0);
        assert!(!t.is_connected());
        assert!(t.is_acyclic());
    }

    #[test]
    fn load_average_updates_cpu() {
        let (mut t, a, _, _) = line3();
        t.set_load_avg(a, 3.0);
        assert_eq!(t.node(a).cpu(), 0.25);
    }

    #[test]
    #[should_panic(expected = "only applies to compute nodes")]
    fn load_average_on_router_rejected() {
        let (mut t, _, s, _) = line3();
        t.set_load_avg(s, 1.0);
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        let (t, a, _, _) = line3();
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Topology = serde_json::from_str(&json).unwrap();
        back.rebuild_name_index();
        assert_eq!(back.node_count(), t.node_count());
        assert_eq!(back.link_count(), t.link_count());
        assert_eq!(back.node_by_name("a").unwrap(), a);
        assert_eq!(back.node(a).cpu(), t.node(a).cpu());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_compute_node("a", 1.0);
        t.add_link(a, a, MBPS);
    }
}
