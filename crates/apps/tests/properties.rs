//! Property tests of the workload models: scaling laws and monotonicity
//! that must hold for the Table 1 comparisons to be meaningful.

use nodesel_apps::{launch_master_slave, launch_phased, MasterSlaveProgram, Phase, PhaseProgram};
use nodesel_simnet::Sim;
use nodesel_topology::builders::star;
use nodesel_topology::units::MBPS;
use proptest::prelude::*;

fn compute_prog(iterations: usize, work: f64) -> PhaseProgram {
    PhaseProgram {
        name: "prop",
        iterations,
        phases: vec![Phase::Compute { work }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pure compute programs scale perfectly on idle homogeneous nodes:
    /// runtime = iterations × work / m, exactly.
    #[test]
    fn compute_programs_scale_exactly(iterations in 1usize..6, work in 1.0f64..50.0, m in 1usize..8) {
        let (topo, ids) = star(m, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = launch_phased(&mut sim, compute_prog(iterations, work), &ids);
        sim.run();
        let expected = iterations as f64 * work / m as f64;
        let t = h.elapsed().unwrap();
        prop_assert!((t - expected).abs() < 1e-6, "t {t}, expected {expected}");
    }

    /// Adding background load never speeds a phased program up, and a
    /// loaded run is slower than an idle one by at least the slowest
    /// node's sharing factor on the compute part.
    #[test]
    fn load_slows_phased_programs(jobs in 1usize..5, work in 5.0f64..40.0) {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let idle = {
            let mut sim = Sim::new(topo.clone());
            let h = launch_phased(&mut sim, compute_prog(2, work), &ids);
            sim.run();
            h.elapsed().unwrap()
        };
        let loaded = {
            let mut sim = Sim::new(topo);
            for _ in 0..jobs {
                sim.start_compute(ids[0], 1e9, |_| {});
            }
            let h = launch_phased(&mut sim, compute_prog(2, work), &ids);
            sim.run_for(1e6);
            h.elapsed().unwrap()
        };
        // Barrier waits for ids[0], running at 1/(jobs+1) speed.
        let expected = idle * (jobs as f64 + 1.0);
        prop_assert!(loaded >= idle, "loaded {loaded} < idle {idle}");
        prop_assert!((loaded - expected).abs() < 1e-6,
            "loaded {loaded}, expected {expected}");
    }

    /// Master–slave throughput scales with the number of idle slaves
    /// (within transfer overhead), and never beats perfect scaling.
    #[test]
    fn master_slave_scales_with_slaves(slaves in 1usize..6, units in 6usize..30) {
        let (topo, ids) = star(slaves + 1, 100.0 * MBPS);
        let prog = MasterSlaveProgram {
            name: "prop-ms",
            units,
            unit_work: 1.0,
            input_bits: 0.1 * MBPS,
            output_bits: 0.1 * MBPS,
            master_work: 0.0,
        };
        let mut sim = Sim::new(topo);
        let h = launch_master_slave(&mut sim, prog, &ids);
        sim.run();
        let t = h.elapsed().unwrap();
        // Lower bound: perfect split of compute across slaves.
        let ideal = (units as f64 / slaves as f64).ceil();
        prop_assert!(t >= ideal - 1e-9, "t {t} beats ideal {ideal}");
        // Upper bound: ideal plus generous transfer/pipeline overhead.
        prop_assert!(t <= ideal + units as f64 * 0.2 + 1.0, "t {t} vs ideal {ideal}");
    }

    /// Identical launches produce identical runtimes (model determinism).
    #[test]
    fn app_models_are_deterministic(iterations in 1usize..5, bits in 1.0f64..100.0) {
        let run = || {
            let (topo, ids) = star(4, 100.0 * MBPS);
            let mut sim = Sim::new(topo);
            let prog = PhaseProgram {
                name: "det",
                iterations,
                phases: vec![
                    Phase::Compute { work: 3.0 },
                    Phase::AllToAll { bits: bits * MBPS },
                    Phase::Gather { root: 0, bits: bits * MBPS },
                ],
            };
            let h = launch_phased(&mut sim, prog, &ids);
            sim.run();
            h.elapsed().unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// Communication-heavy phases respect the physics floor: an all-to-all
    /// of B total bits on an m-node star cannot beat the access-link bound.
    #[test]
    fn all_to_all_respects_bandwidth_floor(m in 2usize..7, bits in 10.0f64..500.0) {
        let (topo, ids) = star(m, 100.0 * MBPS);
        let prog = PhaseProgram {
            name: "a2a",
            iterations: 1,
            phases: vec![Phase::AllToAll { bits: bits * MBPS }],
        };
        let mut sim = Sim::new(topo);
        let h = launch_phased(&mut sim, prog.clone(), &ids);
        sim.run();
        let t = h.elapsed().unwrap();
        let floor = prog.ideal_iteration_seconds(m, 100.0 * MBPS);
        prop_assert!(t >= floor - 1e-9, "t {t} beats physics floor {floor}");
    }
}
