//! Races random, automatic and supervised placement against seeded fault
//! plans and prints completion rate, turnaround, time-to-recover and
//! re-selection counts. `--smoke` shrinks the run for CI.

use nodesel_experiments::fault_study::{render_fault_table, run_fault_study, FaultStudyConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (config, reps) = if smoke {
        (
            FaultStudyConfig {
                units: 3,
                unit_iterations: 8,
                warmup: 120.0,
                deadline: 1200.0,
                crash_after: 10.0,
                ..FaultStudyConfig::default()
            },
            2,
        )
    } else {
        (FaultStudyConfig::default(), 8)
    };

    println!("=== Fault study: permanent crash of the best node ===");
    println!(
        "{} work units x {} FFT iterations, crash at launch+{:.0}s, deadline {:.0}s, {} seeds",
        config.units, config.unit_iterations, config.crash_after, config.deadline, reps
    );
    let cells = run_fault_study(&config, 42, reps);
    print!("{}", render_fault_table(&cells));

    let rebooting = FaultStudyConfig {
        reboot_after: Some(600.0),
        ..config
    };
    println!();
    println!("=== Fault study: crash with reboot after 600 s ===");
    let cells = run_fault_study(&rebooting, 42, reps);
    print!("{}", render_fault_table(&cells));
}
