//! Data-parallel pipeline programs.
//!
//! The paper's related work (Subhlok & Vondran, SPAA '96, cited as [23])
//! studies latency–throughput tradeoffs for data-parallel pipelines; the
//! application-specification interface of §2.1 is designed to describe
//! such stage-structured programs too. This module models them: a chain
//! of stages, one per node, with items streamed through in order. Each
//! stage processes one item at a time; output transfer to the next stage
//! overlaps the stage's next computation, so steady-state throughput is
//! set by the slowest stage (compute or transfer), while end-to-end
//! latency is the sum of the per-stage times — exactly the tension node
//! selection must arbitrate when stages land on loaded nodes or congested
//! links.

use crate::handle::AppHandle;
use nodesel_simnet::{Sim, SimTime};
use nodesel_topology::NodeId;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// One pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineStage {
    /// Reference-CPU-seconds of processing per item.
    pub work: f64,
    /// Bits forwarded to the next stage per item (ignored for the last
    /// stage).
    pub output_bits: f64,
}

/// A pipeline program: `items` data items streamed through `stages`.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineProgram {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Number of items streamed through the pipeline.
    pub items: usize,
    /// The stages, in order. Stage `i` runs on `nodes[i]` at launch.
    pub stages: Vec<PipelineStage>,
}

impl PipelineProgram {
    /// Total compute demand across all stages, reference-CPU-seconds.
    pub fn total_work(&self) -> f64 {
        self.items as f64 * self.stages.iter().map(|s| s.work).sum::<f64>()
    }

    /// Ideal steady-state seconds per item on unloaded reference nodes
    /// with `bw` bits/s between adjacent stages: the slowest stage.
    pub fn ideal_period(&self, bw: f64) -> f64 {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let transfer = if i + 1 < self.stages.len() {
                    s.output_bits / bw
                } else {
                    0.0
                };
                s.work.max(transfer)
            })
            .fold(0.0, f64::max)
    }

    /// Ideal end-to-end latency of one item (empty pipeline): the sum of
    /// stage and transfer times.
    pub fn ideal_latency(&self, bw: f64) -> f64 {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, s)| {
                s.work
                    + if i + 1 < self.stages.len() {
                        s.output_bits / bw
                    } else {
                        0.0
                    }
            })
            .sum()
    }
}

struct StageState {
    /// Items whose input has arrived and not yet been started.
    ready: usize,
    /// Whether the stage is currently processing an item.
    busy: bool,
    /// Items fully processed by this stage.
    done: usize,
}

struct PipelineRun {
    program: PipelineProgram,
    nodes: Vec<NodeId>,
    stages: Vec<StageState>,
    finished: Rc<Cell<Option<SimTime>>>,
}

/// Launches a pipeline with stage `i` on `nodes[i]`. Panics unless
/// `nodes.len() == program.stages.len()` and all nodes are compute nodes.
pub fn launch_pipeline(sim: &mut Sim, program: PipelineProgram, nodes: &[NodeId]) -> AppHandle {
    assert_eq!(
        nodes.len(),
        program.stages.len(),
        "one node per pipeline stage"
    );
    assert!(!program.stages.is_empty(), "a pipeline needs stages");
    for &n in nodes {
        assert!(
            sim.topology().node(n).is_compute(),
            "programs run on compute nodes"
        );
    }
    let (handle, finished) = AppHandle::new(sim.now());
    if program.items == 0 {
        finished.set(Some(sim.now()));
        return handle;
    }
    let items = program.items;
    let n_stages = program.stages.len();
    let mut stages: Vec<StageState> = (0..n_stages)
        .map(|i| StageState {
            ready: if i == 0 { items } else { 0 },
            busy: false,
            done: 0,
        })
        .collect();
    stages[0].ready = items;
    let run = Rc::new(RefCell::new(PipelineRun {
        program,
        nodes: nodes.to_vec(),
        stages,
        finished,
    }));
    try_start(sim, run, 0);
    handle
}

/// Starts the next item on stage `i` if it is idle and input is ready.
fn try_start(sim: &mut Sim, run: Rc<RefCell<PipelineRun>>, stage: usize) {
    let job = {
        let mut r = run.borrow_mut();
        let st = &mut r.stages[stage];
        if st.busy || st.ready == 0 {
            None
        } else {
            st.ready -= 1;
            st.busy = true;
            Some((r.nodes[stage], r.program.stages[stage].work))
        }
    };
    let Some((node, work)) = job else {
        return;
    };
    let run2 = run.clone();
    sim.start_compute(node, work, move |sim| {
        on_stage_complete(sim, run2, stage);
    });
}

fn on_stage_complete(sim: &mut Sim, run: Rc<RefCell<PipelineRun>>, stage: usize) {
    let (forward, all_done) = {
        let mut r = run.borrow_mut();
        r.stages[stage].busy = false;
        r.stages[stage].done += 1;
        let last = stage + 1 == r.stages.len();
        let all_done = last && r.stages[stage].done == r.program.items;
        let forward = if last {
            None
        } else {
            Some((
                r.nodes[stage],
                r.nodes[stage + 1],
                r.program.stages[stage].output_bits,
            ))
        };
        (forward, all_done)
    };
    if all_done {
        let r = run.borrow();
        r.finished.set(Some(sim.now()));
        return;
    }
    if let Some((src, dst, bits)) = forward {
        let run2 = run.clone();
        sim.start_transfer(src, dst, bits, move |sim| {
            {
                run2.borrow_mut().stages[stage + 1].ready += 1;
            }
            try_start(sim, run2.clone(), stage + 1);
        });
    }
    // The stage itself can immediately take its next item (transfer
    // overlaps computation).
    try_start(sim, run, stage);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::{chain, star};
    use nodesel_topology::units::MBPS;

    fn prog(items: usize, works: &[f64], bits: f64) -> PipelineProgram {
        PipelineProgram {
            name: "test-pipe",
            items,
            stages: works
                .iter()
                .map(|&work| PipelineStage {
                    work,
                    output_bits: bits,
                })
                .collect(),
        }
    }

    #[test]
    fn throughput_set_by_slowest_stage() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        // Stages 1s / 2s / 1s, negligible transfers: period 2s.
        let h = launch_pipeline(&mut sim, prog(20, &[1.0, 2.0, 1.0], 0.0), &ids);
        sim.run();
        let t = h.elapsed().unwrap();
        // fill (1 + 2 + 1) for the first item, then 19 more at period 2.
        assert!((t - (4.0 + 19.0 * 2.0)).abs() < 1e-6, "elapsed {t}");
    }

    #[test]
    fn transfer_can_be_the_bottleneck() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        // 0.1 s compute but 1-second transfers (100 Mbit on 100 Mbps).
        let h = launch_pipeline(&mut sim, prog(10, &[0.1, 0.1], 100.0 * MBPS), &ids);
        sim.run();
        let t = h.elapsed().unwrap();
        // Period = 1 s (transfer-bound); total ≈ fill + 9 periods ≈ 10.2.
        assert!(t > 9.0 && t < 11.0, "elapsed {t}");
    }

    #[test]
    fn loaded_stage_node_slows_the_whole_stream() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        sim.start_compute(ids[1], 1e9, |_| {}); // stage 1 at half speed
        let h = launch_pipeline(&mut sim, prog(20, &[1.0, 1.0, 1.0], 0.0), &ids);
        sim.run_for(100.0);
        let t = h.elapsed().unwrap();
        // Stage 1 takes 2 s/item: period 2.
        assert!(t > 38.0, "elapsed {t}");
    }

    #[test]
    fn single_stage_pipeline_serializes() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = launch_pipeline(&mut sim, prog(5, &[2.0], 0.0), &ids[..1]);
        sim.run();
        assert!((h.elapsed().unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn zero_items_finish_instantly() {
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = launch_pipeline(&mut sim, prog(0, &[1.0, 1.0], 0.0), &ids);
        sim.run();
        assert_eq!(h.elapsed(), Some(0.0));
    }

    #[test]
    fn ideal_metrics() {
        let p = prog(10, &[1.0, 3.0, 2.0], 100.0 * MBPS);
        assert_eq!(p.total_work(), 60.0);
        // Transfers take 1 s; slowest stage is 3 s.
        assert_eq!(p.ideal_period(100.0 * MBPS), 3.0);
        // Latency: (1+1) + (3+1) + 2 = 8.
        assert_eq!(p.ideal_latency(100.0 * MBPS), 8.0);
    }

    #[test]
    fn runs_on_multi_hop_topology() {
        let (topo, ids) = chain(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = launch_pipeline(&mut sim, prog(8, &[0.5, 0.5, 0.5, 0.5], 10.0 * MBPS), &ids);
        sim.run();
        assert!(h.is_finished());
        // Period 0.5 (compute-bound; transfers 0.1 s overlap).
        let t = h.elapsed().unwrap();
        assert!(t < 8.0, "elapsed {t}");
    }

    #[test]
    #[should_panic(expected = "one node per pipeline stage")]
    fn stage_node_mismatch_panics() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        launch_pipeline(&mut sim, prog(1, &[1.0, 1.0], 0.0), &ids[..1]);
    }
}
