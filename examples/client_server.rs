//! Constrained placement for a client–server application (§2.1 / §3.3):
//! the server is pinned to a specific machine, the clients must come from
//! an approved pool, and every client needs a minimum-bandwidth path to
//! the rest of the set.
//!
//! Run with: `cargo run -p nodesel-experiments --example client_server`

use nodesel_core::{select, Constraints, GreedyPolicy, Objective, SelectionRequest, Weights};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::units::MBPS;
use std::collections::HashSet;

fn main() {
    let tb = cmu_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());

    // Background activity: load near the pinned server and a stream over
    // the panama-gibraltar trunk.
    for _ in 0..2 {
        sim.start_compute(tb.m(8), 1e9, |_| {});
    }
    sim.start_transfer(tb.m(2), tb.m(12), 1e15, |_| {});
    sim.run_for(120.0);
    let snapshot = remos.snapshot(&sim).to_topology();

    // The server must run on m-7 (say, the only machine with the right
    // binaries); clients may only use the gibraltar pool m-7..m-16.
    let server = tb.m(7);
    let pool: HashSet<_> = (7..=16).map(|i| tb.m(i)).collect();
    let request = SelectionRequest {
        count: 4,
        objective: Objective::Balanced(Weights::comm_priority(2.0)),
        constraints: Constraints {
            allowed: Some(pool),
            required: vec![server],
            min_cpu: None,
            min_bandwidth: Some(40.0 * MBPS),
            max_staleness: None,
        },
        reference_bandwidth: Some(100.0 * MBPS),
        policy: GreedyPolicy::Sweep,
    };

    match select(&snapshot, &request) {
        Ok(sel) => {
            let names: Vec<_> = sel
                .nodes
                .iter()
                .map(|&n| tb.topo.node(n).name().to_string())
                .collect();
            println!("selected (server pinned to m-7): {names:?}");
            println!(
                "min cpu {:.2}, min pairwise bandwidth {:.1} Mbps (floor 40), score {:.2}",
                sel.quality.min_cpu,
                sel.quality.min_bw / MBPS,
                sel.score
            );
            assert!(sel.quality.min_bw >= 40.0 * MBPS);
        }
        Err(e) => println!("no feasible placement: {e}"),
    }

    // Tighten the floor beyond what the network can offer to show the
    // failure mode.
    let mut impossible = request.clone();
    impossible.constraints.min_bandwidth = Some(120.0 * MBPS);
    match select(&snapshot, &impossible) {
        Ok(_) => println!("unexpectedly feasible"),
        Err(e) => println!("floor 120 Mbps: {e} (access links are 100 Mbps)"),
    }
}
