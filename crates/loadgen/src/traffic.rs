//! Background network-traffic generator (paper §4.2).
//!
//! "For generating network traffic, messages were periodically sent between
//! random nodes. Message interarrival times were Poisson, with message
//! length having a LogNormal distribution." The paper argues Poisson
//! arrivals represent the interarrival of large high-speed bulk transfers
//! in a departmental cluster well, even though it is a poor model of
//! aggregate wide-area traffic.

use crate::dist::{split_seed, Exponential, LogNormal};
use nodesel_simnet::{DriverId, DriverLogic, Sim};
use nodesel_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the background traffic process.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Aggregate Poisson arrival rate of messages across the whole network,
    /// messages/second.
    pub arrival_rate: f64,
    /// Median message size, bits.
    pub median_size: f64,
    /// Mean message size, bits (≥ median; the gap sets the LogNormal σ).
    pub mean_size: f64,
}

impl TrafficConfig {
    /// The parameters used for the Table 1 experiments: frequent bulk
    /// transfers sized like large data-set pushes (tens of megabytes),
    /// reflecting a testbed "used primarily for data and compute intensive
    /// computations".
    /// The aggregate offered traffic (~312 Mbps network-wide) keeps every
    /// trunk of the Figure 4 testbed stable (per-direction utilization ≈ 0.73 on the
    /// busiest router-router link) while making congested paths common
    /// enough that random placement regularly pays for crossing them.
    pub fn paper_defaults() -> Self {
        TrafficConfig {
            arrival_rate: 0.13,
            median_size: 100.0 * 8.0 * 1_000_000.0, // 100 MB
            mean_size: 300.0 * 8.0 * 1_000_000.0,   // 300 MB (heavy tail)
        }
    }

    /// Long-run average offered traffic in bits/s across the network.
    pub fn offered_bits_per_sec(&self) -> f64 {
        self.arrival_rate * self.mean_size
    }
}

/// The network-wide Poisson message process, installed as a cloneable
/// [`DriverLogic`] so its state (RNG, size model, counters) lives inside
/// the simulator and survives [`Sim::fork`] bit-exactly.
#[derive(Debug, Clone)]
struct TrafficDriver {
    endpoints: Vec<NodeId>,
    config: TrafficConfig,
    rng: StdRng,
    sizes: LogNormal,
    enabled: bool,
    messages_started: u64,
}

impl DriverLogic for TrafficDriver {
    fn fire(&mut self, sim: &mut Sim, me: DriverId) {
        if !self.enabled {
            return;
        }
        let a = self.rng.random_range(0..self.endpoints.len());
        let b = {
            let mut b = self.rng.random_range(0..self.endpoints.len() - 1);
            if b >= a {
                b += 1;
            }
            b
        };
        let bits = self.sizes.sample(&mut self.rng);
        self.messages_started += 1;
        sim.start_transfer_detached(self.endpoints[a], self.endpoints[b], bits);
        let gap = Exponential::new(self.config.arrival_rate).sample(&mut self.rng);
        sim.schedule_driver_in(gap, me);
    }
}

/// Handle to an installed traffic generator: the id of its driver. State
/// lives inside the [`Sim`], so every accessor takes the simulator — and
/// because driver ids are stable across [`Sim::fork`], one handle works
/// against the original *and* any fork.
#[derive(Debug, Clone)]
pub struct TrafficHandle {
    driver: DriverId,
}

impl TrafficHandle {
    /// Stops scheduling new messages (in-flight transfers drain normally).
    pub fn stop(&self, sim: &mut Sim) {
        sim.driver_mut::<TrafficDriver>(self.driver).enabled = false;
    }

    /// True while the generator is scheduling messages.
    pub fn is_running(&self, sim: &Sim) -> bool {
        sim.driver::<TrafficDriver>(self.driver).enabled
    }

    /// Number of messages started so far.
    pub fn messages_started(&self, sim: &Sim) -> u64 {
        sim.driver::<TrafficDriver>(self.driver).messages_started
    }
}

/// Installs background traffic between random ordered pairs of `endpoints`.
///
/// Messages are started *detached* and the generator is data-driven, so a
/// warmed-up simulator remains forkable ([`Sim::can_fork`]).
///
/// Panics when fewer than two endpoints are given.
pub fn install_traffic(
    sim: &mut Sim,
    endpoints: &[NodeId],
    config: TrafficConfig,
    seed: u64,
) -> TrafficHandle {
    install_traffic_impl(sim, None, endpoints, config, seed)
}

/// Like [`install_traffic`], but homes the generator at `home` (see
/// [`Sim::install_driver_at`]), so on a partitioned simulator whose
/// `endpoints` all live in `home`'s domain the generator is domain-local
/// and the parallel engine can run it inside its shard. On an
/// unpartitioned simulator this is bit-identical to [`install_traffic`].
pub fn install_traffic_at(
    sim: &mut Sim,
    home: NodeId,
    endpoints: &[NodeId],
    config: TrafficConfig,
    seed: u64,
) -> TrafficHandle {
    install_traffic_impl(sim, Some(home), endpoints, config, seed)
}

fn install_traffic_impl(
    sim: &mut Sim,
    home: Option<NodeId>,
    endpoints: &[NodeId],
    config: TrafficConfig,
    seed: u64,
) -> TrafficHandle {
    assert!(endpoints.len() >= 2, "traffic needs at least two endpoints");
    let mut rng = StdRng::seed_from_u64(split_seed(seed, 0x7AFF));
    let gap = Exponential::new(config.arrival_rate).sample(&mut rng);
    let driver = TrafficDriver {
        endpoints: endpoints.to_vec(),
        config,
        rng,
        sizes: LogNormal::from_median_mean(config.median_size, config.mean_size),
        enabled: true,
        messages_started: 0,
    };
    let id = match home {
        Some(node) => sim.install_driver_at(node, driver),
        None => sim.install_driver(driver),
    };
    sim.schedule_driver_in(gap, id);
    TrafficHandle { driver: id }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{install_load, install_load_at};
    use crate::LoadConfig;
    use nodesel_simnet::SimTime;
    use nodesel_topology::builders::{dumbbell, star};
    use nodesel_topology::units::MBPS;
    use nodesel_topology::Direction;

    /// On an unpartitioned simulator, homing the generators changes
    /// nothing: every event fires at the same time in the same order.
    #[test]
    fn homed_installation_is_bit_identical_on_unpartitioned_sim() {
        let (topo, ids) = star(5, 100.0 * MBPS);
        let run = |homed: bool| {
            let mut sim = Sim::new(topo.clone());
            let (load, traffic) = if homed {
                (
                    install_load_at(&mut sim, &ids, LoadConfig::paper_defaults(), 3),
                    install_traffic_at(&mut sim, ids[0], &ids, TrafficConfig::paper_defaults(), 4),
                )
            } else {
                (
                    install_load(&mut sim, &ids, LoadConfig::paper_defaults(), 3),
                    install_traffic(&mut sim, &ids, TrafficConfig::paper_defaults(), 4),
                )
            };
            sim.run_until(SimTime::from_secs(900));
            (
                sim.stats(),
                load.jobs_started(&sim),
                traffic.messages_started(&sim),
            )
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn traffic_moves_bits() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let edges: Vec<_> = topo.edge_ids().collect();
        let mut sim = Sim::new(topo);
        let h = install_traffic(&mut sim, &ids, TrafficConfig::paper_defaults(), 11);
        sim.run_until(SimTime::from_secs(1_200));
        // 0.13 msg/s × 1200 s ≈ 156 expected arrivals.
        assert!(
            h.messages_started(&sim) > 40,
            "{}",
            h.messages_started(&sim)
        );
        let total: f64 = edges
            .iter()
            .map(|&e| sim.link_bits(e, Direction::AtoB) + sim.link_bits(e, Direction::BtoA))
            .sum();
        assert!(total > 0.0);
    }

    #[test]
    fn shared_backbone_gets_congested() {
        let (topo, ids) = dumbbell(3, 100.0 * MBPS, 50.0 * MBPS);
        let backbone = topo.edge_ids().next().unwrap(); // first link is the trunk
        let mut sim = Sim::new(topo);
        install_traffic(&mut sim, &ids, TrafficConfig::paper_defaults(), 5);
        sim.run_until(SimTime::from_secs(900));
        let carried =
            sim.link_bits(backbone, Direction::AtoB) + sim.link_bits(backbone, Direction::BtoA);
        // Cross-side messages are ~half of all messages; the trunk must
        // have carried a nontrivial share of the offered traffic.
        assert!(carried > 1e9, "backbone carried {carried} bits");
    }

    #[test]
    fn stop_halts_new_messages() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = install_traffic(&mut sim, &ids, TrafficConfig::paper_defaults(), 9);
        sim.run_until(SimTime::from_secs(300));
        h.stop(&mut sim);
        let n = h.messages_started(&sim);
        sim.run_until(SimTime::from_secs(900));
        assert_eq!(h.messages_started(&sim), n);
        assert!(!h.is_running(&sim));
    }

    #[test]
    fn generator_keeps_sim_forkable_and_forks_agree() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let edges: Vec<_> = topo.edge_ids().collect();
        let mut sim = Sim::new(topo);
        let h = install_traffic(&mut sim, &ids, TrafficConfig::paper_defaults(), 21);
        sim.run_until(SimTime::from_secs(600));
        assert!(sim.can_fork(), "traffic generator left a closure pending");
        let mut fork = sim.fork();
        fork.run_until(SimTime::from_secs(1_800));
        sim.run_until(SimTime::from_secs(1_800));
        assert_eq!(h.messages_started(&fork), h.messages_started(&sim));
        assert_eq!(fork.stats(), sim.stats());
        for &e in &edges {
            for dir in [Direction::AtoB, Direction::BtoA] {
                assert_eq!(
                    fork.link_bits(e, dir).to_bits(),
                    sim.link_bits(e, dir).to_bits()
                );
            }
        }
    }

    #[test]
    fn src_and_dst_always_differ() {
        // Indirect check: with two endpoints every message crosses the one
        // link, so link counters must equal started messages' bits exactly;
        // a self-message would break the invariant by moving nothing.
        let (topo, ids) = star(2, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let h = install_traffic(&mut sim, &ids, TrafficConfig::paper_defaults(), 13);
        sim.run_until(SimTime::from_secs(2_000));
        assert!(h.messages_started(&sim) > 100);
        assert!(sim.stats().completed_flows > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let (topo, ids) = star(4, 100.0 * MBPS);
            let mut sim = Sim::new(topo);
            let h = install_traffic(&mut sim, &ids, TrafficConfig::paper_defaults(), seed);
            sim.run_until(SimTime::from_secs(500));
            (h.messages_started(&sim), sim.stats().completed_flows)
        };
        assert_eq!(run(2), run(2));
        assert_ne!(run(2), run(3));
    }
}
