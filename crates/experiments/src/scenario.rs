//! The Figure 4 worked scenario: automatic selection steering around a
//! bulk traffic stream on the CMU testbed.
//!
//! Figure 4 highlights "4 nodes (with bold borders) that were automatically
//! selected to avoid a traffic stream from m-16 to m-18". We reproduce it
//! end to end: start the stream, let the Remos collector observe it, run
//! the balanced selection, and verify that no route between selected nodes
//! shares a link with the stream.

use nodesel_core::{BalancedSelector, SelectionRequest, Selector};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::dot::to_dot;
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::{EdgeId, NodeId};
use std::collections::HashSet;

/// Result of the scenario run.
#[derive(Debug, Clone)]
pub struct Fig4Outcome {
    /// Names of the four selected nodes (the bold nodes of Figure 4).
    pub selected: Vec<String>,
    /// Node ids of the selection.
    pub selected_ids: Vec<NodeId>,
    /// True when no selected pair's route shares a link with the stream.
    pub avoids_stream: bool,
    /// Graphviz rendering with the selected nodes emphasized.
    pub dot: String,
}

/// Runs the scenario: a persistent bulk stream `m-16 → m-18`, then a
/// 4-node automatic selection from Remos measurements.
pub fn run_fig4_scenario() -> Fig4Outcome {
    let tb = cmu_testbed();
    let topo = tb.topo.clone();
    let routes = topo.routes();
    let stream_links: HashSet<EdgeId> = routes
        .path(tb.m(16), tb.m(18))
        .expect("testbed is connected")
        .hops
        .iter()
        .map(|&(e, _)| e)
        .collect();

    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    // A long-running bulk stream, as in the figure.
    sim.start_transfer(tb.m(16), tb.m(18), 1e15, |_| {});
    sim.run_for(60.0);

    let snapshot = remos.snapshot(&sim);
    let mut selector = BalancedSelector::new();
    let selection = selector
        .select(&snapshot, &SelectionRequest::balanced(4))
        .expect("testbed has enough nodes");

    // Does any selected pair's route touch the stream's links?
    let mut avoids = true;
    for (i, &a) in selection.nodes.iter().enumerate() {
        for &b in selection.nodes.iter().skip(i + 1) {
            let path = routes.path(a, b).expect("connected");
            if path.hops.iter().any(|&(e, _)| stream_links.contains(&e)) {
                avoids = false;
            }
        }
    }

    let names = selection
        .nodes
        .iter()
        .map(|&n| topo.node(n).name().to_string())
        .collect();
    let dot = to_dot(&snapshot.to_topology(), &selection.nodes);
    Fig4Outcome {
        selected: names,
        selected_ids: selection.nodes,
        avoids_stream: avoids,
        dot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_avoids_the_stream() {
        let outcome = run_fig4_scenario();
        assert_eq!(outcome.selected.len(), 4);
        assert!(outcome.avoids_stream, "selected {:?}", outcome.selected);
        // The stream endpoints must not be selected.
        assert!(!outcome.selected.contains(&"m-16".to_string()));
        assert!(!outcome.selected.contains(&"m-18".to_string()));
        // The DOT output highlights exactly four nodes.
        assert_eq!(outcome.dot.matches("penwidth=2.5").count(), 4);
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = run_fig4_scenario();
        let b = run_fig4_scenario();
        assert_eq!(a.selected, b.selected);
    }
}
