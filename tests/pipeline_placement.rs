//! Cross-crate test: placing a pipeline with the spec interface (chain
//! ordering) and running it on the simulator beats a deliberately bad
//! stage order when the network is congested.

use nodesel_apps::{launch_pipeline, PipelineProgram, PipelineStage};
use nodesel_core::spec::{select_for_spec, AppSpec, CommPattern};
use nodesel_remos::{CollectorConfig, Remos};
use nodesel_simnet::Sim;
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::units::MBPS;
use nodesel_topology::NodeId;

fn pipeline() -> PipelineProgram {
    PipelineProgram {
        name: "stream",
        items: 40,
        stages: (0..4)
            .map(|_| PipelineStage {
                work: 0.2,
                output_bits: 40.0 * MBPS, // heavy inter-stage transfers
            })
            .collect(),
    }
}

fn run_on(order: &[NodeId], congest: bool) -> f64 {
    let tb = cmu_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    if congest {
        // Saturate the panama–gibraltar trunk with several bulk streams in
        // each direction, so a crossing pipeline flow gets a small share.
        for i in 0..3 {
            sim.start_transfer(tb.m(1 + i), tb.m(7 + i), 1e15, |_| {});
            sim.start_transfer(tb.m(10 + i), tb.m(4 + i), 1e15, |_| {});
        }
    }
    let handle = launch_pipeline(&mut sim, pipeline(), order);
    while !handle.is_finished() {
        assert!(sim.step());
    }
    handle.elapsed().unwrap()
}

#[test]
fn spec_placed_pipeline_avoids_the_congested_trunk() {
    let tb = cmu_testbed();
    let mut sim = Sim::new(tb.topo.clone());
    let remos = Remos::install(&mut sim, CollectorConfig::default());
    for i in 0..3 {
        sim.start_transfer(tb.m(1 + i), tb.m(7 + i), 1e15, |_| {});
        sim.start_transfer(tb.m(10 + i), tb.m(4 + i), 1e15, |_| {});
    }
    sim.run_for(60.0);
    let snapshot = remos.snapshot(&sim).to_topology();

    let spec = AppSpec {
        comm_fraction: 0.7,
        ..AppSpec::new("stream", 4, CommPattern::Pipeline)
    };
    let placed = select_for_spec(&snapshot, &spec).unwrap();

    // A deliberately bad order: alternating across the congested trunk.
    let bad = vec![tb.m(4), tb.m(13), tb.m(5), tb.m(14)];

    let good_time = run_on(&placed.ordered_nodes, true);
    let bad_time = run_on(&bad, true);
    assert!(
        good_time < bad_time * 0.8,
        "placed {good_time:.1}s should clearly beat trunk-crossing {bad_time:.1}s"
    );

    // Sanity: on a quiet network the bad order is merely mediocre, not
    // catastrophic — the gap above comes from the congestion.
    let bad_quiet = run_on(&bad, false);
    assert!(bad_quiet < bad_time);
}

#[test]
fn chain_order_matters_even_without_background_traffic() {
    // The pipeline's own transfers contend when stages alternate across
    // the trunk: adjacent-stage flows share it in both directions.
    let tb = cmu_testbed();
    let adjacent = vec![tb.m(2), tb.m(3), tb.m(4), tb.m(5)]; // all on panama
    let zigzag = vec![tb.m(2), tb.m(8), tb.m(3), tb.m(9)]; // crosses trunk 3x
    let t_adj = run_on(&adjacent, false);
    let t_zig = run_on(&zigzag, false);
    assert!(
        t_adj <= t_zig + 1e-9,
        "adjacent {t_adj:.2}s vs zigzag {t_zig:.2}s"
    );
}
