//! Paper-specific networks: the Figure 1 example graph and the Figure 4
//! CMU testbed.

use crate::units::MBPS;
use crate::{NodeId, Topology};

/// Handles into the [`cmu_testbed`] topology.
#[derive(Debug, Clone)]
pub struct CmuTestbed {
    /// The annotated graph.
    pub topo: Topology,
    /// Compute nodes `m-1` .. `m-18`, in order (`machines[0]` is `m-1`).
    pub machines: Vec<NodeId>,
    /// Router `panama`.
    pub panama: NodeId,
    /// Router `gibraltar`.
    pub gibraltar: NodeId,
    /// Router `suez`.
    pub suez: NodeId,
}

impl CmuTestbed {
    /// The compute node named `m-{i}` (1-based, matching the paper's labels).
    pub fn m(&self, i: usize) -> NodeId {
        assert!((1..=18).contains(&i), "machines are m-1 .. m-18");
        self.machines[i - 1]
    }
}

/// Reconstruction of the Figure 4 IP testbed at Carnegie Mellon.
///
/// From the paper: compute nodes are DEC Alphas `m-1` to `m-18`; routers are
/// `panama`, `suez` and `gibraltar`; all links are 100 Mbps Ethernet except
/// the `gibraltar`–`suez` link, which is 155 Mbps ATM.
///
/// **Documented assumption.** The text does not state which hosts attach to
/// which router, only the figure (not machine-readable) does. We attach
/// `m-1`..`m-6` to `panama`, `m-7`..`m-16` to `gibraltar`, and `m-17`,
/// `m-18` to `suez`, with routers chained `panama — gibraltar — suez`. This
/// keeps the paper's worked scenario meaningful: a bulk stream from `m-16`
/// to `m-18` crosses the `gibraltar`–`suez` trunk, so automatic selection
/// must confine the application to nodes whose pairwise routes avoid that
/// trunk (the "bold border" nodes of Figure 4). Any attachment with `m-16`
/// and `m-18` under different routers preserves this behaviour.
///
/// Per-host access links are modeled at 100 Mbps with 0.1 ms latency, the
/// trunks at 100 Mbps (`panama`–`gibraltar`) and 155 Mbps (`gibraltar`–`suez`)
/// with 0.2 ms latency.
pub fn cmu_testbed() -> CmuTestbed {
    let mut t = Topology::new();
    let panama = t.add_network_node("panama");
    let gibraltar = t.add_network_node("gibraltar");
    let suez = t.add_network_node("suez");
    t.add_link_full(panama, gibraltar, 100.0 * MBPS, 100.0 * MBPS, 2e-4);
    t.add_link_full(gibraltar, suez, 155.0 * MBPS, 155.0 * MBPS, 2e-4);

    let mut machines = Vec::with_capacity(18);
    for i in 1..=18 {
        let router = if i <= 6 {
            panama
        } else if i <= 16 {
            gibraltar
        } else {
            suez
        };
        let m = t.add_compute_node(format!("m-{i}"), 1.0);
        t.add_link_full(router, m, 100.0 * MBPS, 100.0 * MBPS, 1e-4);
        machines.push(m);
    }
    CmuTestbed {
        topo: t,
        machines,
        panama,
        gibraltar,
        suez,
    }
}

/// Handles into the [`figure1`] topology.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The annotated graph.
    pub topo: Topology,
    /// The four workstations.
    pub hosts: Vec<NodeId>,
    /// The two switches.
    pub switches: Vec<NodeId>,
}

/// The simple network of Figure 1: a Remos logical-topology graph.
///
/// The figure shows a small structured network — two interconnected network
/// nodes, each serving a couple of workstations — illustrating that the
/// logical topology captures shared intermediate links that end-to-end
/// measurements between host pairs cannot attribute. We build exactly that
/// shape: hosts `w1`, `w2` on switch `s1`; hosts `w3`, `w4` on switch `s2`;
/// a 10 Mbps inter-switch link as the structural bottleneck.
pub fn figure1() -> Figure1 {
    let mut t = Topology::new();
    let s1 = t.add_network_node("s1");
    let s2 = t.add_network_node("s2");
    t.add_link(s1, s2, 10.0 * MBPS);
    let mut hosts = Vec::new();
    for (name, sw) in [("w1", s1), ("w2", s1), ("w3", s2), ("w4", s2)] {
        let h = t.add_compute_node(name, 1.0);
        t.add_link(sw, h, 100.0 * MBPS);
        hosts.push(h);
    }
    Figure1 {
        topo: t,
        hosts,
        switches: vec![s1, s2],
    }
}

/// A heterogeneous variant of the CMU testbed (§3.3, "Heterogeneous links
/// and nodes"): the panama machines are upgraded to double-speed Alphas
/// (`speed = 2.0`), the suez pair is connected by old 10 Mbps Ethernet,
/// and the gibraltar–suez trunk keeps its 155 Mbps ATM. Exercises both
/// heterogeneity mechanisms: relative node speeds (`effective_cpu`) and
/// the reference-link bandwidth for fractional-bandwidth comparisons.
pub fn heterogeneous_testbed() -> CmuTestbed {
    let mut t = Topology::new();
    let panama = t.add_network_node("panama");
    let gibraltar = t.add_network_node("gibraltar");
    let suez = t.add_network_node("suez");
    t.add_link_full(panama, gibraltar, 100.0 * MBPS, 100.0 * MBPS, 2e-4);
    t.add_link_full(gibraltar, suez, 155.0 * MBPS, 155.0 * MBPS, 2e-4);
    let mut machines = Vec::with_capacity(18);
    for i in 1..=18 {
        let (router, speed, access) = if i <= 6 {
            (panama, 2.0, 100.0 * MBPS) // upgraded fast nodes
        } else if i <= 16 {
            (gibraltar, 1.0, 100.0 * MBPS)
        } else {
            (suez, 1.0, 10.0 * MBPS) // legacy Ethernet
        };
        let m = t.add_compute_node(format!("m-{i}"), speed);
        t.add_link_full(router, m, access, access, 1e-4);
        machines.push(m);
    }
    CmuTestbed {
        topo: t,
        machines,
        panama,
        gibraltar,
        suez,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_paper_inventory() {
        let tb = cmu_testbed();
        assert_eq!(tb.topo.compute_node_count(), 18);
        assert_eq!(tb.topo.node_count(), 21);
        assert_eq!(tb.topo.link_count(), 20);
        assert!(tb.topo.is_connected());
        assert!(tb.topo.is_acyclic());
        assert_eq!(tb.topo.node(tb.m(1)).name(), "m-1");
        assert_eq!(tb.topo.node(tb.m(18)).name(), "m-18");
    }

    #[test]
    fn atm_link_is_faster_trunk() {
        let tb = cmu_testbed();
        let r = tb.topo.routes();
        // m-17 to m-18: both on suez, no trunk crossing.
        assert_eq!(r.path(tb.m(17), tb.m(18)).unwrap().len(), 2);
        // m-1 to m-18 crosses both trunks: 100 Mbps bottleneck.
        let p = r.path(tb.m(1), tb.m(18)).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(r.bottleneck_bw(tb.m(1), tb.m(18)).unwrap(), 100.0 * MBPS);
        // m-7 to m-17 crosses only the ATM trunk; the access links still
        // bound the bottleneck at 100 Mbps.
        assert_eq!(r.bottleneck_bw(tb.m(7), tb.m(17)).unwrap(), 100.0 * MBPS);
    }

    #[test]
    fn scenario_stream_crosses_atm_trunk() {
        let tb = cmu_testbed();
        let r = tb.topo.routes();
        let p = r.path(tb.m(16), tb.m(18)).unwrap();
        let nodes = p.nodes(&tb.topo);
        assert!(nodes.contains(&tb.gibraltar));
        assert!(nodes.contains(&tb.suez));
        assert!(!nodes.contains(&tb.panama));
    }

    #[test]
    fn figure1_shape() {
        let f = figure1();
        assert_eq!(f.topo.compute_node_count(), 4);
        assert_eq!(f.topo.node_count(), 6);
        assert!(f.topo.is_acyclic());
        let r = f.topo.routes();
        // Cross-switch pairs see the 10 Mbps structural bottleneck that
        // pairwise end-host measurements could not localize.
        assert_eq!(
            r.bottleneck_bw(f.hosts[0], f.hosts[2]).unwrap(),
            10.0 * MBPS
        );
        assert_eq!(
            r.bottleneck_bw(f.hosts[0], f.hosts[1]).unwrap(),
            100.0 * MBPS
        );
    }

    #[test]
    fn heterogeneous_testbed_shape() {
        let tb = heterogeneous_testbed();
        assert_eq!(tb.topo.compute_node_count(), 18);
        assert_eq!(tb.topo.node(tb.m(1)).speed(), 2.0);
        assert_eq!(tb.topo.node(tb.m(7)).speed(), 1.0);
        // A loaded fast node equals an idle reference node.
        let mut t = tb.topo.clone();
        t.set_load_avg(tb.m(1), 1.0);
        assert_eq!(t.node(tb.m(1)).effective_cpu(), 1.0);
        // Legacy access links bound the suez machines.
        let r = tb.topo.routes();
        assert_eq!(r.bottleneck_bw(tb.m(17), tb.m(18)).unwrap(), 10.0 * MBPS);
    }
}
