//! Grouped selection for custom execution patterns (§2.1 / §3.4).
//!
//! The application interface lets a program declare "different node groups
//! within an application (e.g. client and server groups)" with "specific
//! requirements of different groups (e.g. a server may be compiled only
//! for Alpha architecture or must run on some specific machines)". The
//! paper lists richer per-pattern optimization as ongoing work (§3.4,
//! "Custom execution patterns"); this module implements the natural
//! generalization of the Figure 3 sweep to groups:
//!
//! at every edge-deletion round, try to place *all* groups inside each
//! surviving component (group by group, in declaration order, each
//! honouring its own allowed/required/CPU constraints, nodes disjoint),
//! score the combined placement by `min(min cpu, min edge fraction)`, and
//! keep the best placement seen across the sweep. All groups land in one
//! component, so every intra- and inter-group path avoids the deleted
//! (congested) edges.

use crate::quality::evaluate;
use crate::request::{Constraints, GreedyPolicy};
use crate::weights::Weights;
use crate::{SelectError, Selection};
use nodesel_topology::{Component, GraphView, NodeId, Topology};

/// One group of an application (e.g. "servers", "clients").
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// Group name, echoed in the result.
    pub name: String,
    /// Nodes this group needs.
    pub count: usize,
    /// Group-specific constraints. `min_bandwidth` inside a group spec is
    /// rejected — use [`GroupedRequest::min_bandwidth`], which applies to
    /// every path of the combined placement.
    pub constraints: Constraints,
}

impl GroupSpec {
    /// Convenience constructor for an unconstrained group.
    pub fn new(name: impl Into<String>, count: usize) -> Self {
        GroupSpec {
            name: name.into(),
            count,
            constraints: Constraints::none(),
        }
    }
}

/// A multi-group selection request.
#[derive(Debug, Clone)]
pub struct GroupedRequest {
    /// The groups, most-constrained / most-important first: earlier groups
    /// get first pick of the high-CPU nodes in each candidate component.
    pub groups: Vec<GroupSpec>,
    /// Minimum available bandwidth between *any* pair of selected nodes
    /// (within or across groups).
    pub min_bandwidth: Option<f64>,
    /// Priority weights for the balanced score.
    pub weights: Weights,
    /// Reference bandwidth for heterogeneous networks (§3.3).
    pub reference_bandwidth: Option<f64>,
    /// Greedy termination policy.
    pub policy: GreedyPolicy,
}

impl GroupedRequest {
    /// A request with default policy, equal weights and no bandwidth floor.
    pub fn new(groups: Vec<GroupSpec>) -> Self {
        GroupedRequest {
            groups,
            min_bandwidth: None,
            weights: Weights::EQUAL,
            reference_bandwidth: None,
            policy: GreedyPolicy::Sweep,
        }
    }

    fn total_count(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }
}

/// Result of a grouped selection.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedSelection {
    /// Per-group node assignments, in request order.
    pub groups: Vec<(String, Vec<NodeId>)>,
    /// The flattened selection with its exact quality.
    pub combined: Selection,
}

impl GroupedSelection {
    /// The nodes assigned to the named group, if present.
    pub fn group(&self, name: &str) -> Option<&[NodeId]> {
        self.groups
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, nodes)| nodes.as_slice())
    }
}

fn eligible_in(topo: &Topology, spec: &GroupSpec, n: NodeId) -> bool {
    topo.node(n).is_compute()
        && spec
            .constraints
            .allowed
            .as_ref()
            .is_none_or(|set| set.contains(&n))
        && spec
            .constraints
            .min_cpu
            .is_none_or(|c| topo.node(n).effective_cpu() >= c)
}

/// Tries to place every group inside one component. Returns the per-group
/// assignments and the minimum effective CPU over all chosen nodes.
fn place_groups(
    topo: &Topology,
    comp: &Component,
    groups: &[GroupSpec],
) -> Option<(Vec<Vec<NodeId>>, f64)> {
    let mut taken: Vec<NodeId> = Vec::new();
    let mut result = Vec::with_capacity(groups.len());
    let mut min_cpu = f64::INFINITY;
    for spec in groups {
        // Required nodes must be in this component, eligible, and untaken.
        for &r in &spec.constraints.required {
            if comp.nodes.binary_search(&r).is_err()
                || !eligible_in(topo, spec, r)
                || taken.contains(&r)
            {
                return None;
            }
        }
        let mut candidates: Vec<NodeId> = comp
            .compute_nodes
            .iter()
            .copied()
            .filter(|&n| eligible_in(topo, spec, n) && !taken.contains(&n))
            .collect();
        if candidates.len() < spec.count {
            return None;
        }
        candidates.sort_by(|&a, &b| {
            topo.node(b)
                .effective_cpu()
                .total_cmp(&topo.node(a).effective_cpu())
                .then(a.cmp(&b))
        });
        let mut chosen: Vec<NodeId> = spec.constraints.required.clone();
        chosen.sort_unstable();
        chosen.dedup();
        for &n in &candidates {
            if chosen.len() == spec.count {
                break;
            }
            if !chosen.contains(&n) {
                chosen.push(n);
            }
        }
        if chosen.len() != spec.count {
            return None;
        }
        for &n in &chosen {
            min_cpu = min_cpu.min(topo.node(n).effective_cpu());
            taken.push(n);
        }
        chosen.sort_unstable();
        result.push(chosen);
    }
    Some((result, min_cpu))
}

/// Selects nodes for every group simultaneously (see module docs).
///
/// ```
/// use nodesel_core::{select_groups, GroupSpec, GroupedRequest};
/// use nodesel_topology::builders::star;
/// use nodesel_topology::units::MBPS;
///
/// let (topo, _) = star(6, 100.0 * MBPS);
/// let request = GroupedRequest::new(vec![
///     GroupSpec::new("servers", 2),
///     GroupSpec::new("clients", 3),
/// ]);
/// let sel = select_groups(&topo, &request).unwrap();
/// assert_eq!(sel.group("servers").unwrap().len(), 2);
/// assert_eq!(sel.combined.nodes.len(), 5);
/// ```
pub fn select_groups(
    topo: &Topology,
    request: &GroupedRequest,
) -> Result<GroupedSelection, SelectError> {
    assert!(request.weights.validate(), "invalid priority weights");
    if request.groups.is_empty() || request.total_count() == 0 {
        return Err(SelectError::ZeroCount);
    }
    for spec in &request.groups {
        if spec.count == 0 {
            return Err(SelectError::ZeroCount);
        }
        assert!(
            spec.constraints.min_bandwidth.is_none(),
            "per-group min_bandwidth is not supported; set GroupedRequest::min_bandwidth"
        );
        if spec.constraints.required.len() > spec.count {
            return Err(SelectError::TooManyRequired {
                required: spec.constraints.required.len(),
                count: spec.count,
            });
        }
    }
    let total = request.total_count();
    if topo.compute_node_count() < total {
        return Err(SelectError::NotEnoughNodes {
            eligible: topo.compute_node_count(),
            requested: total,
        });
    }

    let edge_fraction = |e: nodesel_topology::EdgeId| -> f64 {
        let link = topo.link(e);
        match request.reference_bandwidth {
            Some(r) => link.bw() / r,
            None => link.bwfactor(),
        }
    };

    let mut view = GraphView::new(topo);
    if let Some(floor) = request.min_bandwidth {
        let below: Vec<_> = view
            .live_edges()
            .filter(|&e| topo.link(e).bw() < floor)
            .collect();
        for e in below {
            view.remove_edge(e);
        }
    }

    // Edge fractions are static per link, so the per-round "find the
    // minimum live edge" scan collapses into one sort plus a cursor —
    // the deletion sequence is identical to repeated `min_live_edge_by`
    // calls (same `(fraction, id)` tie-breaking), one O(E) scan cheaper
    // per round.
    let mut order: Vec<_> = view.live_edges().collect();
    order.sort_unstable_by(|&x, &y| {
        edge_fraction(x)
            .total_cmp(&edge_fraction(y))
            .then(x.cmp(&y))
    });
    let mut cursor = 0usize;

    let mut best: Option<(f64, Vec<Vec<NodeId>>)> = None;
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut round_best: Option<(f64, Vec<Vec<NodeId>>)> = None;
        let mut any = false;
        for comp in view.components() {
            let Some((assignment, min_cpu)) = place_groups(topo, &comp, &request.groups) else {
                continue;
            };
            any = true;
            let min_frac = if comp.edges.is_empty() {
                1.0
            } else {
                comp.edges
                    .iter()
                    .map(|&e| edge_fraction(e))
                    .fold(f64::INFINITY, f64::min)
            };
            let score = (min_cpu / request.weights.compute).min(min_frac / request.weights.comm);
            match &round_best {
                Some((b, _)) if *b >= score => {}
                _ => round_best = Some((score, assignment)),
            }
        }
        if !any {
            break;
        }
        let improved = match (&round_best, &best) {
            (Some((r, _)), Some((b, _))) => r > b,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if improved {
            best = round_best;
        } else if request.policy == GreedyPolicy::Faithful && iterations > 1 {
            break;
        }
        match order.get(cursor) {
            Some(&e) => {
                cursor += 1;
                view.remove_edge(e);
            }
            None => break,
        }
    }

    let (_, assignment) = best.ok_or(SelectError::Unsatisfiable)?;
    let mut all: Vec<NodeId> = assignment.iter().flatten().copied().collect();
    all.sort_unstable();
    let routes = topo.routes();
    let quality = evaluate(topo, &routes, &all, request.reference_bandwidth);
    Ok(GroupedSelection {
        groups: request
            .groups
            .iter()
            .zip(&assignment)
            .map(|(spec, nodes)| (spec.name.clone(), nodes.clone()))
            .collect(),
        combined: Selection {
            score: quality.score(request.weights),
            nodes: all,
            quality,
            iterations,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::{dumbbell, star};
    use nodesel_topology::units::MBPS;
    use nodesel_topology::Direction;
    use std::collections::HashSet;

    #[test]
    fn groups_are_disjoint_and_sized() {
        let (topo, _) = star(6, 100.0 * MBPS);
        let req = GroupedRequest::new(vec![
            GroupSpec::new("servers", 2),
            GroupSpec::new("clients", 3),
        ]);
        let sel = select_groups(&topo, &req).unwrap();
        let servers: HashSet<_> = sel.group("servers").unwrap().iter().collect();
        let clients: HashSet<_> = sel.group("clients").unwrap().iter().collect();
        assert_eq!(servers.len(), 2);
        assert_eq!(clients.len(), 3);
        assert!(servers.is_disjoint(&clients));
        assert_eq!(sel.combined.nodes.len(), 5);
    }

    #[test]
    fn earlier_groups_get_the_better_nodes() {
        let (mut topo, ids) = star(4, 100.0 * MBPS);
        topo.set_load_avg(ids[0], 2.0);
        topo.set_load_avg(ids[1], 1.0);
        let req = GroupedRequest::new(vec![
            GroupSpec::new("server", 1),
            GroupSpec::new("clients", 3),
        ]);
        let sel = select_groups(&topo, &req).unwrap();
        // The server group picks first and gets an idle node.
        let server = sel.group("server").unwrap()[0];
        assert_eq!(topo.node(server).load_avg(), 0.0);
    }

    #[test]
    fn server_pool_constraint_respected() {
        let (mut topo, ids) = star(5, 100.0 * MBPS);
        // Only ids[3], ids[4] can host the server (say, Alpha binaries),
        // and both are loaded — the server group must still use them.
        topo.set_load_avg(ids[3], 2.0);
        topo.set_load_avg(ids[4], 2.0);
        let pool: HashSet<_> = [ids[3], ids[4]].into_iter().collect();
        let req = GroupedRequest::new(vec![
            GroupSpec {
                name: "server".into(),
                count: 1,
                constraints: Constraints {
                    allowed: Some(pool),
                    ..Constraints::none()
                },
            },
            GroupSpec::new("clients", 2),
        ]);
        let sel = select_groups(&topo, &req).unwrap();
        let server = sel.group("server").unwrap()[0];
        assert!(server == ids[3] || server == ids[4]);
        // Clients come from the idle pool.
        for &c in sel.group("clients").unwrap() {
            assert_eq!(topo.node(c).load_avg(), 0.0);
        }
    }

    #[test]
    fn pinned_server_is_honoured() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let req = GroupedRequest::new(vec![
            GroupSpec {
                name: "server".into(),
                count: 1,
                constraints: Constraints {
                    required: vec![ids[2]],
                    ..Constraints::none()
                },
            },
            GroupSpec::new("clients", 2),
        ]);
        let sel = select_groups(&topo, &req).unwrap();
        assert_eq!(sel.group("server").unwrap(), &[ids[2]]);
        assert!(!sel.group("clients").unwrap().contains(&ids[2]));
    }

    #[test]
    fn placement_avoids_congested_trunk() {
        let (mut topo, _) = dumbbell(4, 100.0 * MBPS, 100.0 * MBPS);
        let trunk = topo.edge_ids().next().unwrap();
        topo.set_link_used(trunk, Direction::AtoB, 90.0 * MBPS);
        topo.set_link_used(trunk, Direction::BtoA, 90.0 * MBPS);
        let req = GroupedRequest::new(vec![GroupSpec::new("a", 2), GroupSpec::new("b", 2)]);
        let sel = select_groups(&topo, &req).unwrap();
        // All four nodes on one side: full bandwidth everywhere.
        assert_eq!(sel.combined.quality.min_bw, 100.0 * MBPS);
    }

    #[test]
    fn infeasible_combinations_error() {
        let (topo, ids) = star(3, 100.0 * MBPS);
        // More nodes than exist.
        let req = GroupedRequest::new(vec![GroupSpec::new("g", 4)]);
        assert!(matches!(
            select_groups(&topo, &req),
            Err(SelectError::NotEnoughNodes { .. })
        ));
        // Disjoint groups both demanding the same single allowed node.
        let only: HashSet<_> = [ids[0]].into_iter().collect();
        let req = GroupedRequest::new(vec![
            GroupSpec {
                name: "a".into(),
                count: 1,
                constraints: Constraints {
                    allowed: Some(only.clone()),
                    ..Constraints::none()
                },
            },
            GroupSpec {
                name: "b".into(),
                count: 1,
                constraints: Constraints {
                    allowed: Some(only),
                    ..Constraints::none()
                },
            },
        ]);
        assert_eq!(select_groups(&topo, &req), Err(SelectError::Unsatisfiable));
        // Zero-sized group.
        let req = GroupedRequest::new(vec![GroupSpec::new("g", 0)]);
        assert!(matches!(
            select_groups(&topo, &req),
            Err(SelectError::ZeroCount)
        ));
    }

    #[test]
    fn bandwidth_floor_applies_across_groups() {
        let (mut topo, _) = dumbbell(2, 100.0 * MBPS, 100.0 * MBPS);
        let trunk = topo.edge_ids().next().unwrap();
        topo.set_link_used(trunk, Direction::AtoB, 80.0 * MBPS);
        topo.set_link_used(trunk, Direction::BtoA, 80.0 * MBPS);
        // 3 nodes cannot fit on one side; with a 50 Mbps floor the trunk
        // (20 Mbps left) is unusable, so the request is infeasible.
        let mut req = GroupedRequest::new(vec![GroupSpec::new("a", 2), GroupSpec::new("b", 1)]);
        req.min_bandwidth = Some(50.0 * MBPS);
        assert_eq!(select_groups(&topo, &req), Err(SelectError::Unsatisfiable));
    }
}
