//! Workload models of the applications the paper evaluates.
//!
//! The Table 1 experiments execute three real codes on the CMU testbed;
//! this crate models each with the structural property the paper uses to
//! explain its behaviour:
//!
//! * [`fft`] — FFT (1K), 32 iterations: loosely synchronous,
//!   compute-dominated, barrier after every phase;
//! * [`airshed`] — Airshed pollution modeling, 6 simulated hours: loosely
//!   synchronous with a heavier communication share;
//! * [`mri`] — MRI (`epi` dataset): adaptive master–slave self-scheduling.
//!
//! The generic execution engines are [`launch_phased`] (barrier-separated
//! collective phases) and [`launch_master_slave`] (work-queue pipelines).
//! Each application module documents its calibration against the paper's
//! unloaded reference times (48 s / 150 s / 540 s) and carries a test that
//! pins it.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod airshed;
pub mod fft;
mod handle;
mod master_slave;
mod migratable;
pub mod mri;
mod phased;
mod pipeline;

pub use handle::AppHandle;
pub use master_slave::{launch_master_slave, MasterSlaveProgram};
pub use migratable::{launch_phased_migratable, MigratableHandle, MigrationStats, PlacementPolicy};
pub use phased::{launch_phased, Phase, PhaseProgram};
pub use pipeline::{launch_pipeline, PipelineProgram, PipelineStage};

use nodesel_simnet::Sim;
use nodesel_topology::NodeId;

/// A launchable application model.
#[derive(Debug, Clone, PartialEq)]
pub enum AppModel {
    /// A loosely-synchronous phase program.
    Phased(PhaseProgram),
    /// A master–slave work queue.
    MasterSlave(MasterSlaveProgram),
    /// A data-parallel pipeline (one stage per node).
    Pipeline(PipelineProgram),
}

impl AppModel {
    /// The paper's three applications, with their Table 1 node counts.
    pub fn paper_suite() -> Vec<(AppModel, usize)> {
        vec![
            (AppModel::Phased(fft::fft_1k()), 4),
            (AppModel::Phased(airshed::airshed()), 5),
            (AppModel::MasterSlave(mri::mri_epi()), 4),
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AppModel::Phased(p) => p.name,
            AppModel::MasterSlave(p) => p.name,
            AppModel::Pipeline(p) => p.name,
        }
    }

    /// Launches the application on `nodes` inside `sim`.
    pub fn launch(&self, sim: &mut Sim, nodes: &[NodeId]) -> AppHandle {
        match self {
            AppModel::Phased(p) => launch_phased(sim, p.clone(), nodes),
            AppModel::MasterSlave(p) => launch_master_slave(sim, *p, nodes),
            AppModel::Pipeline(p) => launch_pipeline(sim, p.clone(), nodes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesel_topology::builders::star;
    use nodesel_topology::units::MBPS;

    #[test]
    fn paper_suite_inventory() {
        let suite = AppModel::paper_suite();
        assert_eq!(suite.len(), 3);
        let names: Vec<_> = suite.iter().map(|(a, _)| a.name()).collect();
        assert_eq!(names, vec!["FFT (1K)", "Airshed", "MRI"]);
        assert_eq!(suite[0].1, 4);
        assert_eq!(suite[1].1, 5);
        assert_eq!(suite[2].1, 4);
    }

    #[test]
    fn launch_dispatches_both_kinds() {
        let (topo, ids) = star(4, 100.0 * MBPS);
        let mut sim = Sim::new(topo);
        let phased = AppModel::Phased(fft::fft_program(1));
        let h1 = phased.launch(&mut sim, &ids);
        let ms = AppModel::MasterSlave(mri::mri_program(3));
        let h2 = ms.launch(&mut sim, &ids);
        sim.run();
        assert!(h1.is_finished());
        assert!(h2.is_finished());
    }
}
