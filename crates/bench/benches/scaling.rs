//! Checks the §3.2 complexity claim: selection runs in O(n²) in the
//! topology size (compute + network nodes). Prints a sweep with the fitted
//! growth exponent and benchmarks each size for the Criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nodesel_bench::conditioned_tree;
use nodesel_core::{balanced, max_compute, Constraints, GreedyPolicy, Weights};
use std::hint::black_box;
use std::time::Instant;

fn bench_scaling(c: &mut Criterion) {
    // One-shot sweep with a log-log fit, as the experiment artifact.
    let sizes = [50usize, 100, 200, 400, 800];
    let mut pts = Vec::new();
    eprintln!("\n=== Complexity check (balanced selection, m = 8) ===");
    for &n in &sizes {
        let (topo, ids) = conditioned_tree(11, n);
        let m = 8.min(ids.len());
        let reps = 5;
        let t = Instant::now();
        for _ in 0..reps {
            balanced(
                &topo,
                m,
                Weights::EQUAL,
                &Constraints::none(),
                None,
                GreedyPolicy::Sweep,
            )
            .unwrap();
        }
        let ms = t.elapsed().as_secs_f64() * 1e3 / reps as f64;
        eprintln!("  n = {n:>4}: {ms:>9.3} ms");
        pts.push((n as f64, ms));
    }
    let slope = (pts[pts.len() - 1].1 / pts[0].1).ln() / (pts[pts.len() - 1].0 / pts[0].0).ln();
    eprintln!("  growth exponent ≈ {slope:.2} (paper claims O(n²))");

    let mut group = c.benchmark_group("scaling");
    for &n in &[50usize, 100, 200, 400] {
        let (topo, ids) = conditioned_tree(11, n);
        let m = 8.min(ids.len());
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("balanced", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    balanced(
                        &topo,
                        m,
                        Weights::EQUAL,
                        &Constraints::none(),
                        None,
                        GreedyPolicy::Sweep,
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("max_compute", n), &n, |b, _| {
            b.iter(|| black_box(max_compute(&topo, m, &Constraints::none()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
