//! Sensitivity study (§4.4).
//!
//! The paper: "More experimentation is needed to address a number of
//! questions, including ... sensitivity of automatic node selection to
//! load and traffic on one hand, and application length and
//! characteristics on the other. Addressing these issues satisfactorily
//! requires an amount of experimentation that we could not attain because
//! of limited resources." Simulation removes that resource limit: these
//! sweeps scale the offered load / traffic and the application length and
//! measure how the benefit of automatic selection responds.

use crate::driver::{mean, run_trials, Condition, Strategy, Testbed, TrialConfig};
use nodesel_apps::{fft::fft_program, AppModel};
use serde::{Deserialize, Serialize};

/// One point of a sensitivity sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Multiplier applied to the baseline generator intensity (or the
    /// iteration count, for the length sweep).
    pub factor: f64,
    /// Mean runtime with random selection, seconds.
    pub random: f64,
    /// Mean runtime with automatic selection, seconds.
    pub auto: f64,
    /// Mean unloaded reference runtime, seconds.
    pub reference: f64,
}

impl SensitivityPoint {
    /// Fraction of the induced increase remaining under automatic
    /// selection (≈0 = selection removes the whole penalty; 1 = no help).
    pub fn remaining_increase(&self) -> f64 {
        let r = (self.random - self.reference).max(0.0);
        let a = (self.auto - self.reference).max(0.0);
        if r > 1e-9 {
            a / r
        } else {
            1.0
        }
    }
}

fn measure(
    testbed: &Testbed,
    app: &AppModel,
    m: usize,
    condition: Condition,
    config: &TrialConfig,
    seed: u64,
    reps: usize,
) -> (f64, f64, f64) {
    let reference = mean(&run_trials(
        testbed,
        app,
        m,
        Strategy::Random,
        Condition::None,
        config,
        seed,
        reps,
    ));
    let random = mean(&run_trials(
        testbed,
        app,
        m,
        Strategy::Random,
        condition,
        config,
        seed,
        reps,
    ));
    let auto = mean(&run_trials(
        testbed,
        app,
        m,
        Strategy::Automatic,
        condition,
        config,
        seed,
        reps,
    ));
    (reference, random, auto)
}

/// Sweeps the offered compute load: the baseline arrival rate is scaled
/// by each factor.
pub fn load_sensitivity(
    app: &AppModel,
    m: usize,
    factors: &[f64],
    repetitions: usize,
    seed: u64,
) -> Vec<SensitivityPoint> {
    let testbed = Testbed::cmu();
    factors
        .iter()
        .map(|&factor| {
            let mut config = TrialConfig::default();
            config.load.arrival_rate *= factor;
            let (reference, random, auto) = measure(
                &testbed,
                app,
                m,
                Condition::Load,
                &config,
                seed,
                repetitions,
            );
            SensitivityPoint {
                factor,
                random,
                auto,
                reference,
            }
        })
        .collect()
}

/// Sweeps the offered background traffic: the baseline message arrival
/// rate is scaled by each factor.
pub fn traffic_sensitivity(
    app: &AppModel,
    m: usize,
    factors: &[f64],
    repetitions: usize,
    seed: u64,
) -> Vec<SensitivityPoint> {
    let testbed = Testbed::cmu();
    factors
        .iter()
        .map(|&factor| {
            let mut config = TrialConfig::default();
            config.traffic.arrival_rate *= factor;
            let (reference, random, auto) = measure(
                &testbed,
                app,
                m,
                Condition::Traffic,
                &config,
                seed,
                repetitions,
            );
            SensitivityPoint {
                factor,
                random,
                auto,
                reference,
            }
        })
        .collect()
}

/// Sweeps the application length (FFT iteration count): short runs enjoy
/// fresh measurements for their whole lifetime; long runs outlive them.
pub fn length_sensitivity(
    m: usize,
    iteration_counts: &[usize],
    repetitions: usize,
    seed: u64,
) -> Vec<SensitivityPoint> {
    let testbed = Testbed::cmu();
    iteration_counts
        .iter()
        .map(|&iters| {
            let app = AppModel::Phased(fft_program(iters));
            let config = TrialConfig::default();
            let (reference, random, auto) = measure(
                &testbed,
                &app,
                m,
                Condition::Both,
                &config,
                seed,
                repetitions,
            );
            SensitivityPoint {
                factor: iters as f64,
                random,
                auto,
                reference,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_increase_math() {
        let p = SensitivityPoint {
            factor: 1.0,
            random: 100.0,
            auto: 75.0,
            reference: 50.0,
        };
        assert!((p.remaining_increase() - 0.5).abs() < 1e-12);
        let none = SensitivityPoint {
            factor: 1.0,
            random: 50.0,
            auto: 50.0,
            reference: 50.0,
        };
        assert_eq!(none.remaining_increase(), 1.0);
    }

    #[test]
    fn load_sweep_is_monotone_in_random_cost() {
        // More offered load must (stochastically) cost random placement
        // more; compare the extreme factors with a small app.
        let app = AppModel::Phased(fft_program(8));
        let pts = load_sensitivity(&app, 4, &[0.25, 4.0], 6, 31);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].random > pts[0].random,
            "x0.25 -> {:.1}, x4 -> {:.1}",
            pts[0].random,
            pts[1].random
        );
        // Auto never loses to random on average at the heavy point.
        assert!(pts[1].auto <= pts[1].random * 1.05);
    }

    #[test]
    fn zero_factor_degenerates_to_reference() {
        // Factor ~0 (tiny arrival rate): load barely exists, random ≈ ref.
        let app = AppModel::Phased(fft_program(4));
        let pts = load_sensitivity(&app, 4, &[1e-6], 4, 17);
        assert!((pts[0].random - pts[0].reference).abs() / pts[0].reference < 0.05);
    }
}
