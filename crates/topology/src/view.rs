//! Edge-deletion overlay used by the selection algorithms.

use crate::{EdgeId, NodeId, Topology};

/// A read-only view of a [`Topology`] with a set of logically removed edges.
///
/// The paper's algorithms (Figures 2 and 3) repeatedly "remove the edge with
/// the minimum available bandwidth" and recompute connected components.
/// `GraphView` supports that loop without cloning or mutating the underlying
/// snapshot: removal flips a bit, and component computation skips removed
/// edges. Two additions serve the fast-path engines in `nodesel-core`:
///
/// * a **compact live-edge list** maintained under removal/restore, so that
///   repeated scans ([`GraphView::live_edges`],
///   [`GraphView::min_live_edge_by`]) touch only surviving edges instead of
///   re-filtering the full edge set every round;
/// * **reusable flood scratch** ([`GraphView::flood_component`]), so the
///   incremental split bookkeeping of the balanced engine allocates nothing
///   in steady state.
#[derive(Debug, Clone)]
pub struct GraphView<'a> {
    topo: &'a Topology,
    removed: Vec<bool>,
    removed_count: usize,
    /// Live edges in unspecified order; `live_pos[e]` is `e`'s slot in
    /// `live`, or `usize::MAX` while removed.
    live: Vec<EdgeId>,
    live_pos: Vec<usize>,
    /// Flood-fill scratch: `mark[n] == mark_stamp` iff `n` was reached by
    /// the most recent [`GraphView::flood_component`].
    mark: Vec<u32>,
    mark_stamp: u32,
    stack: Vec<NodeId>,
}

/// One connected component of a [`GraphView`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// All member nodes, in ascending id order.
    pub nodes: Vec<NodeId>,
    /// Member nodes that are compute nodes, in ascending id order.
    pub compute_nodes: Vec<NodeId>,
    /// Live (non-removed) edges with both endpoints in this component.
    pub edges: Vec<EdgeId>,
}

impl Component {
    /// Number of compute nodes in the component.
    pub fn compute_count(&self) -> usize {
        self.compute_nodes.len()
    }
}

impl<'a> GraphView<'a> {
    /// Creates a view with no edges removed.
    pub fn new(topo: &'a Topology) -> Self {
        GraphView {
            topo,
            removed: vec![false; topo.link_count()],
            removed_count: 0,
            live: topo.edge_ids().collect(),
            live_pos: (0..topo.link_count()).collect(),
            mark: vec![0; topo.node_count()],
            mark_stamp: 0,
            stack: Vec::new(),
        }
    }

    /// The underlying topology snapshot.
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    /// Logically removes an edge. Removing an already-removed edge is a
    /// no-op.
    pub fn remove_edge(&mut self, e: EdgeId) {
        if !self.removed[e.index()] {
            self.removed[e.index()] = true;
            self.removed_count += 1;
            let slot = self.live_pos[e.index()];
            self.live.swap_remove(slot);
            if let Some(&moved) = self.live.get(slot) {
                self.live_pos[moved.index()] = slot;
            }
            self.live_pos[e.index()] = usize::MAX;
        }
    }

    /// Restores a previously removed edge.
    pub fn restore_edge(&mut self, e: EdgeId) {
        if self.removed[e.index()] {
            self.removed[e.index()] = false;
            self.removed_count -= 1;
            self.live_pos[e.index()] = self.live.len();
            self.live.push(e);
        }
    }

    /// True if the edge is currently removed.
    pub fn is_removed(&self, e: EdgeId) -> bool {
        self.removed[e.index()]
    }

    /// Number of live (non-removed) edges.
    pub fn live_edge_count(&self) -> usize {
        self.topo.link_count() - self.removed_count
    }

    /// Iterates over live edge ids in unspecified (but deterministic)
    /// order. The scan is over a compact list that only contains surviving
    /// edges, so its cost is O(live), not O(total).
    pub fn live_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.live.iter().copied()
    }

    /// Live edge with the minimum key according to `key`, breaking ties by
    /// edge id (deterministic). Returns `None` when no live edges remain.
    pub fn min_live_edge_by(&self, mut key: impl FnMut(EdgeId) -> f64) -> Option<EdgeId> {
        let mut best: Option<(f64, EdgeId)> = None;
        for e in self.live_edges() {
            let k = key(e);
            match best {
                Some((bk, be)) if (bk, be) <= (k, e) => {}
                _ => best = Some((k, e)),
            }
        }
        best.map(|(_, e)| e)
    }

    /// Connected components induced by the live edges, each listing its
    /// nodes, compute nodes and internal edges. Components are ordered by
    /// their smallest node id; nodes within a component are sorted.
    pub fn components(&self) -> Vec<Component> {
        let n = self.topo.node_count();
        let mut label = vec![usize::MAX; n];
        let mut components: Vec<Component> = Vec::new();
        let mut stack = Vec::new();
        for start in 0..n {
            if label[start] != usize::MAX {
                continue;
            }
            let cid = components.len();
            components.push(Component {
                nodes: Vec::new(),
                compute_nodes: Vec::new(),
                edges: Vec::new(),
            });
            label[start] = cid;
            stack.push(NodeId(start as u32));
            while let Some(v) = stack.pop() {
                components[cid].nodes.push(v);
                if self.topo.node(v).is_compute() {
                    components[cid].compute_nodes.push(v);
                }
                for &(e, w) in self.topo.neighbors(v) {
                    if self.removed[e.index()] {
                        continue;
                    }
                    if label[w.index()] == usize::MAX {
                        label[w.index()] = cid;
                        stack.push(w);
                    }
                }
            }
        }
        // Ascending edge id, so `Component::edges` stays deterministic
        // regardless of the compact live list's internal order.
        for e in self.topo.edge_ids().filter(|e| !self.removed[e.index()]) {
            let l = self.topo.link(e);
            let ca = label[l.a().index()];
            if ca == label[l.b().index()] {
                components[ca].edges.push(e);
            }
        }
        for c in &mut components {
            c.nodes.sort_unstable();
            c.compute_nodes.sort_unstable();
        }
        components
    }

    /// The component containing `n`.
    pub fn component_of(&self, n: NodeId) -> Component {
        self.components()
            .into_iter()
            .find(|c| c.nodes.binary_search(&n).is_ok())
            .expect("every node belongs to a component")
    }

    /// True when `a` and `b` are connected through live edges.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        let mut seen = vec![false; self.topo.node_count()];
        let mut stack = vec![a];
        seen[a.index()] = true;
        while let Some(v) = stack.pop() {
            for &(e, w) in self.topo.neighbors(v) {
                if self.removed[e.index()] || seen[w.index()] {
                    continue;
                }
                if w == b {
                    return true;
                }
                seen[w.index()] = true;
                stack.push(w);
            }
        }
        false
    }

    /// Collects the nodes of the live component containing `start` into
    /// `out` (cleared first, unsorted discovery order) using internal
    /// scratch buffers — no allocation in steady state.
    ///
    /// After the call, [`GraphView::last_flood_contains`] answers membership
    /// queries against this flood in O(1). This is the primitive behind the
    /// incremental split bookkeeping of the balanced fast path: when an
    /// edge `(a, b)` is deleted, one flood from `a` both detects whether the
    /// component split and, if so, yields the `a`-side node set.
    pub fn flood_component(&mut self, start: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        if self.mark_stamp == u32::MAX {
            self.mark.fill(0);
            self.mark_stamp = 0;
        }
        self.mark_stamp += 1;
        let stamp = self.mark_stamp;
        self.mark[start.index()] = stamp;
        self.stack.push(start);
        while let Some(v) = self.stack.pop() {
            out.push(v);
            for &(e, w) in self.topo.neighbors(v) {
                if !self.removed[e.index()] && self.mark[w.index()] != stamp {
                    self.mark[w.index()] = stamp;
                    self.stack.push(w);
                }
            }
        }
    }

    /// True when `n` was reached by the most recent
    /// [`GraphView::flood_component`] call.
    pub fn last_flood_contains(&self, n: NodeId) -> bool {
        self.mark_stamp != 0 && self.mark[n.index()] == self.mark_stamp
    }

    /// Size (in compute nodes) of the largest component, together with that
    /// component. This is the `L` / `l` of Figure 2.
    pub fn largest_compute_component(&self) -> Option<Component> {
        self.components()
            .into_iter()
            .max_by_key(|c| c.compute_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MBPS;
    use crate::Topology;

    /// star: hub h with leaves a,b,c (compute), edges e0,e1,e2.
    fn star() -> (Topology, [NodeId; 4], [EdgeId; 3]) {
        let mut t = Topology::new();
        let h = t.add_network_node("h");
        let a = t.add_compute_node("a", 1.0);
        let b = t.add_compute_node("b", 1.0);
        let c = t.add_compute_node("c", 1.0);
        let e0 = t.add_link(h, a, 100.0 * MBPS);
        let e1 = t.add_link(h, b, 100.0 * MBPS);
        let e2 = t.add_link(h, c, 100.0 * MBPS);
        (t, [h, a, b, c], [e0, e1, e2])
    }

    #[test]
    fn fresh_view_is_one_component() {
        let (t, nodes, _) = star();
        let v = GraphView::new(&t);
        let comps = v.components();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].nodes.len(), 4);
        assert_eq!(comps[0].compute_count(), 3);
        assert!(v.connected(nodes[1], nodes[3]));
    }

    #[test]
    fn removal_splits_components() {
        let (t, nodes, edges) = star();
        let mut v = GraphView::new(&t);
        v.remove_edge(edges[0]);
        let comps = v.components();
        assert_eq!(comps.len(), 2);
        assert!(!v.connected(nodes[1], nodes[2]));
        assert!(v.connected(nodes[2], nodes[3]));
        // The singleton component is {a}.
        let single = comps.iter().find(|c| c.nodes.len() == 1).unwrap();
        assert_eq!(single.nodes, vec![nodes[1]]);
        assert_eq!(single.compute_count(), 1);
    }

    #[test]
    fn restore_heals_connectivity() {
        let (t, nodes, edges) = star();
        let mut v = GraphView::new(&t);
        v.remove_edge(edges[1]);
        assert!(!v.connected(nodes[2], nodes[0]));
        v.restore_edge(edges[1]);
        assert!(v.connected(nodes[2], nodes[0]));
        assert_eq!(v.live_edge_count(), 3);
    }

    #[test]
    fn double_remove_is_idempotent() {
        let (t, _, edges) = star();
        let mut v = GraphView::new(&t);
        v.remove_edge(edges[2]);
        v.remove_edge(edges[2]);
        assert_eq!(v.live_edge_count(), 2);
        v.restore_edge(edges[2]);
        assert_eq!(v.live_edge_count(), 3);
    }

    #[test]
    fn component_edges_are_internal() {
        let (t, _, edges) = star();
        let mut v = GraphView::new(&t);
        v.remove_edge(edges[0]);
        for c in v.components() {
            for &e in &c.edges {
                let l = t.link(e);
                assert!(c.nodes.binary_search(&l.a()).is_ok());
                assert!(c.nodes.binary_search(&l.b()).is_ok());
            }
        }
        // Total internal edges = live edges (hub graph keeps both in one comp).
        let total: usize = v.components().iter().map(|c| c.edges.len()).sum();
        assert_eq!(total, v.live_edge_count());
    }

    #[test]
    fn min_live_edge_by_breaks_ties_by_id() {
        let (t, _, edges) = star();
        let v = GraphView::new(&t);
        // All keys equal => lowest edge id wins.
        assert_eq!(v.min_live_edge_by(|_| 1.0), Some(edges[0]));
        // Distinct keys.
        assert_eq!(
            v.min_live_edge_by(|e| if e == edges[1] { 0.5 } else { 1.0 }),
            Some(edges[1])
        );
    }

    #[test]
    fn live_list_stays_compact_under_removal_and_restore() {
        let (t, _, edges) = star();
        let mut v = GraphView::new(&t);
        v.remove_edge(edges[1]);
        let mut live: Vec<_> = v.live_edges().collect();
        live.sort_unstable();
        assert_eq!(live, vec![edges[0], edges[2]]);
        v.restore_edge(edges[1]);
        v.remove_edge(edges[0]);
        v.remove_edge(edges[2]);
        assert_eq!(v.live_edges().collect::<Vec<_>>(), vec![edges[1]]);
        // min_live_edge_by agrees with a brute-force scan after churn.
        assert_eq!(v.min_live_edge_by(|_| 1.0), Some(edges[1]));
    }

    #[test]
    fn flood_component_matches_components() {
        let (t, nodes, edges) = star();
        let mut v = GraphView::new(&t);
        v.remove_edge(edges[0]);
        let mut out = Vec::new();
        v.flood_component(nodes[0], &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![nodes[0], nodes[2], nodes[3]]);
        assert!(v.last_flood_contains(nodes[2]));
        assert!(!v.last_flood_contains(nodes[1]));
        // A second flood reuses the scratch and re-stamps membership.
        v.flood_component(nodes[1], &mut out);
        assert_eq!(out, vec![nodes[1]]);
        assert!(!v.last_flood_contains(nodes[0]));
    }

    #[test]
    fn largest_compute_component_tracks_removals() {
        let (t, nodes, edges) = star();
        let mut v = GraphView::new(&t);
        assert_eq!(v.largest_compute_component().unwrap().compute_count(), 3);
        v.remove_edge(edges[0]);
        v.remove_edge(edges[1]);
        let biggest = v.largest_compute_component().unwrap();
        // Components: {a}, {b}, {h, c} — largest by compute count has 1; the
        // tie is broken by max_by_key returning the *last* maximum, but all
        // candidates have exactly one compute node.
        assert_eq!(biggest.compute_count(), 1);
        assert!(v.connected(nodes[0], nodes[3]));
    }
}
