//! Links (edges) of the logical topology graph.

use crate::NodeId;
use serde::{Deserialize, Serialize};

/// Direction of traffic on a link, relative to its stored endpoint order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// From endpoint `a` towards endpoint `b`.
    AtoB,
    /// From endpoint `b` towards endpoint `a`.
    BtoA,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Self {
        match self {
            Direction::AtoB => Direction::BtoA,
            Direction::BtoA => Direction::AtoB,
        }
    }
}

/// A communication link between two nodes (paper §3.1 and §3.3).
///
/// The paper starts from undirected links but explicitly supports networks
/// where each direction is a distinct physical channel ("Independent and
/// shared network links", §3.3). A `Link` therefore stores a capacity and a
/// current utilization *per direction*; a classic shared medium is modeled
/// by constructing the link with equal directional capacities and the
/// aggregate view ([`Link::bw`]) taking the minimum available direction, as
/// prescribed by the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    /// Peak capacity in bits/s for each direction (`[a->b, b->a]`).
    pub(crate) capacity: [f64; 2],
    /// Currently consumed bandwidth in bits/s for each direction.
    pub(crate) used: [f64; 2],
    /// One-way latency in seconds.
    pub(crate) latency: f64,
}

impl Link {
    pub(crate) fn new(a: NodeId, b: NodeId, cap_ab: f64, cap_ba: f64, latency: f64) -> Self {
        // Zero capacity models an administratively-down direction (the
        // simulator starves flows routed across it); negative is invalid.
        assert!(
            cap_ab >= 0.0 && cap_ba >= 0.0,
            "link capacity must be non-negative"
        );
        assert!(latency >= 0.0, "latency must be non-negative");
        Link {
            a,
            b,
            capacity: [cap_ab, cap_ba],
            used: [0.0, 0.0],
            latency,
        }
    }

    /// First endpoint (in construction order).
    pub fn a(&self) -> NodeId {
        self.a
    }

    /// Second endpoint (in construction order).
    pub fn b(&self) -> NodeId {
        self.b
    }

    /// Returns the endpoint other than `n`; panics if `n` is not an endpoint.
    pub fn opposite(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("node {n:?} is not an endpoint of this link")
        }
    }

    /// True if `n` is one of the endpoints.
    pub fn touches(&self, n: NodeId) -> bool {
        n == self.a || n == self.b
    }

    /// Direction of travel when leaving `from` over this link.
    pub fn direction_from(&self, from: NodeId) -> Direction {
        if from == self.a {
            Direction::AtoB
        } else {
            debug_assert_eq!(from, self.b);
            Direction::BtoA
        }
    }

    /// Peak bandwidth of the given direction, bits/s.
    pub fn capacity(&self, dir: Direction) -> f64 {
        self.capacity[dir as usize]
    }

    /// Currently consumed bandwidth of the given direction, bits/s.
    pub fn used(&self, dir: Direction) -> f64 {
        self.used[dir as usize]
    }

    /// Available bandwidth of the given direction, bits/s (never negative).
    pub fn available(&self, dir: Direction) -> f64 {
        (self.capacity(dir) - self.used(dir)).max(0.0)
    }

    /// One-way latency in seconds.
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// `maxbw(i, j)`: the peak bandwidth of the link (paper §3.1).
    ///
    /// For a bidirectional link this is the minimum of the two directional
    /// capacities, matching the paper's rule that "the available capacity of
    /// a bidirectional link is taken to be the minimum of the available
    /// capacities in each direction".
    pub fn maxbw(&self) -> f64 {
        self.capacity[0].min(self.capacity[1])
    }

    /// `bw(i, j)`: the currently available bandwidth of the link.
    pub fn bw(&self) -> f64 {
        self.available(Direction::AtoB)
            .min(self.available(Direction::BtoA))
    }

    /// `bwfactor = bw / maxbw`: fraction of the peak bandwidth available.
    ///
    /// An administratively-down link (zero capacity in some direction)
    /// has factor 0: no bandwidth is available across it.
    pub fn bwfactor(&self) -> f64 {
        let maxbw = self.maxbw();
        if maxbw == 0.0 {
            0.0
        } else {
            self.bw() / maxbw
        }
    }

    pub(crate) fn set_used(&mut self, dir: Direction, bits_per_sec: f64) {
        assert!(bits_per_sec >= 0.0, "utilization must be non-negative");
        self.used[dir as usize] = bits_per_sec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MBPS;

    fn link() -> Link {
        Link::new(NodeId(0), NodeId(1), 100.0 * MBPS, 100.0 * MBPS, 1e-4)
    }

    #[test]
    fn fresh_link_is_fully_available() {
        let l = link();
        assert_eq!(l.bw(), 100.0 * MBPS);
        assert_eq!(l.maxbw(), 100.0 * MBPS);
        assert_eq!(l.bwfactor(), 1.0);
    }

    #[test]
    fn bw_takes_worst_direction() {
        let mut l = link();
        l.set_used(Direction::AtoB, 80.0 * MBPS);
        l.set_used(Direction::BtoA, 20.0 * MBPS);
        assert_eq!(l.bw(), 20.0 * MBPS);
        assert!((l.bwfactor() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn available_saturates_at_zero() {
        let mut l = link();
        l.set_used(Direction::AtoB, 150.0 * MBPS);
        assert_eq!(l.available(Direction::AtoB), 0.0);
        assert_eq!(l.bw(), 0.0);
    }

    #[test]
    fn asymmetric_capacities() {
        let l = Link::new(NodeId(0), NodeId(1), 155.0 * MBPS, 100.0 * MBPS, 0.0);
        assert_eq!(l.maxbw(), 100.0 * MBPS);
        assert_eq!(l.capacity(Direction::AtoB), 155.0 * MBPS);
    }

    #[test]
    fn zero_capacity_models_admin_down() {
        // An administratively-down link is structure without service:
        // every bandwidth view reads 0, and bwfactor is 0 rather than
        // NaN from the 0/0 it would otherwise compute.
        let l = Link::new(NodeId(0), NodeId(1), 0.0, 0.0, 1e-4);
        assert_eq!(l.maxbw(), 0.0);
        assert_eq!(l.bw(), 0.0);
        assert_eq!(l.available(Direction::AtoB), 0.0);
        assert_eq!(l.bwfactor(), 0.0);
        assert!(!l.bwfactor().is_nan());
    }

    #[test]
    fn opposite_and_direction() {
        let l = link();
        assert_eq!(l.opposite(NodeId(0)), NodeId(1));
        assert_eq!(l.opposite(NodeId(1)), NodeId(0));
        assert_eq!(l.direction_from(NodeId(0)), Direction::AtoB);
        assert_eq!(l.direction_from(NodeId(1)), Direction::BtoA);
        assert_eq!(Direction::AtoB.reverse(), Direction::BtoA);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn opposite_rejects_foreign_node() {
        link().opposite(NodeId(7));
    }
}
