//! Relative prioritization of computation and communication (§3.3).

/// Priority weights for the balanced objective.
///
/// The paper: "if computation was prioritized by a factor of 2, 50% CPU
/// availability would be considered equivalent to 25% availability of
/// communication paths." A resource's availability is *divided* by its
/// weight before the two are compared, so a higher `compute` weight makes
/// CPU the scarcer resource and pushes the selection to spend bandwidth to
/// protect CPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Priority factor of computation.
    pub compute: f64,
    /// Priority factor of communication.
    pub comm: f64,
}

impl Weights {
    /// Equal priority (the paper's default formulation).
    pub const EQUAL: Weights = Weights {
        compute: 1.0,
        comm: 1.0,
    };

    /// Computation prioritized by `factor` over communication.
    pub fn compute_priority(factor: f64) -> Weights {
        assert!(factor > 0.0);
        Weights {
            compute: factor,
            comm: 1.0,
        }
    }

    /// Communication prioritized by `factor` over computation.
    pub fn comm_priority(factor: f64) -> Weights {
        assert!(factor > 0.0);
        Weights {
            compute: 1.0,
            comm: factor,
        }
    }

    /// Validates that both weights are positive and finite.
    pub fn validate(&self) -> bool {
        self.compute > 0.0 && self.comm > 0.0 && self.compute.is_finite() && self.comm.is_finite()
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::EQUAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_equivalence() {
        // Compute priority 2: cpu 0.5 and comm 0.25 score identically.
        let w = Weights::compute_priority(2.0);
        assert_eq!(0.5 / w.compute, 0.25 / w.comm);
    }

    #[test]
    fn constructors() {
        assert_eq!(Weights::default(), Weights::EQUAL);
        let w = Weights::comm_priority(3.0);
        assert_eq!(w.comm, 3.0);
        assert_eq!(w.compute, 1.0);
        assert!(w.validate());
        assert!(!Weights {
            compute: 0.0,
            comm: 1.0
        }
        .validate());
    }
}
