//! Contention study: K concurrent jobs, oblivious vs ledger-aware.
//!
//! The paper's experiments place one application at a time. A placement
//! *service* faces a different regime: several jobs arrive before the
//! measurement layer has seen any of them run. An **oblivious** service
//! answers each arrival from the same snapshot — K identical requests
//! get the K-fold-stacked *same* "best" nodes — while a **ledger-aware**
//! service ([`PlacementService::admit`]) charges each admitted job's
//! declared demand (CPU share per placed node, bandwidth per route link)
//! against a residual network, so each admission sees the capacity its
//! predecessors already hold and spreads out.
//!
//! The study admits K identical FFT jobs under both regimes on two
//! testbeds — the paper's CMU testbed and a federated fabric of
//! star subnets joined by thin trunks
//! ([`nodesel_topology::builders::federation`]) — launches all K jobs at
//! the same instant in one simulator, and measures per-job turnaround,
//! makespan, and slowdown against a solo baseline (the first job's
//! placement running alone). Everything is deterministic: no background
//! generators, no RNG — the contention *is* the workload.

use crate::driver::mean;
use nodesel_apps::{fft::fft_program, AppModel};
use nodesel_core::SelectionRequest;
use nodesel_service::{PlacementService, ServiceConfig};
use nodesel_simnet::Sim;
use nodesel_topology::builders::federation;
use nodesel_topology::testbeds::cmu_testbed;
use nodesel_topology::units::MBPS;
use nodesel_topology::{NetSnapshot, NodeId, Topology};
use std::collections::HashSet;
use std::sync::Arc;

/// Which network the jobs contend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentionTestbed {
    /// The paper's CMU testbed (18 machines, heterogeneous fabric).
    Cmu,
    /// Four star subnets of eight hosts joined by 50 Mbps trunks.
    Federated,
}

impl ContentionTestbed {
    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ContentionTestbed::Cmu => "cmu",
            ContentionTestbed::Federated => "federated",
        }
    }

    /// Builds the testbed's topology.
    pub fn topology(self) -> Topology {
        match self {
            ContentionTestbed::Cmu => cmu_testbed().topo,
            ContentionTestbed::Federated => federation(4, Some(2e-3)).0,
        }
    }
}

/// Placement regime under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentionRegime {
    /// Every arrival answered from the same raw snapshot (`get`): no
    /// reservation, K identical requests stack on the same nodes.
    Oblivious,
    /// Every arrival admitted (`admit`): solved on the residual network,
    /// charged to the ledger, visible to the next arrival.
    LedgerAware,
}

impl ContentionRegime {
    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ContentionRegime::Oblivious => "oblivious",
            ContentionRegime::LedgerAware => "ledger-aware",
        }
    }
}

/// Tunables of one contention run.
#[derive(Debug, Clone, Copy)]
pub struct ContentionConfig {
    /// Nodes per job.
    pub m: usize,
    /// FFT iterations per job.
    pub iterations: usize,
    /// Declared per-pair bandwidth demand handed to the ledger, bit/s
    /// (also the request's `reference_bandwidth`).
    pub reference_bandwidth: f64,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            m: 4,
            iterations: 12,
            reference_bandwidth: 10.0 * MBPS,
        }
    }
}

/// Outcome of one `(testbed, regime, K)` cell.
#[derive(Debug, Clone)]
pub struct ContentionOutcome {
    /// Network the jobs ran on.
    pub testbed: ContentionTestbed,
    /// Placement regime.
    pub regime: ContentionRegime,
    /// Concurrent jobs.
    pub k: usize,
    /// Per-job turnaround, seconds, in admission order.
    pub elapsed: Vec<f64>,
    /// Turnaround of the first job's placement running alone — the
    /// shared baseline for slowdowns (the first admission sees an empty
    /// ledger, so both regimes share it by construction).
    pub solo: f64,
    /// Time until the last job finished, seconds.
    pub makespan: f64,
    /// Sum of per-job turnarounds, seconds (aggregate elapsed).
    pub total_elapsed: f64,
    /// Mean of per-job `elapsed / solo`.
    pub mean_slowdown: f64,
    /// Distinct nodes across all K placements (K·m when fully spread).
    pub distinct_nodes: usize,
}

/// Launches every placement at t=0 in one simulator and returns per-job
/// turnarounds. No background generators: the jobs contend only with
/// each other.
fn run_jobs(topo: &Topology, placements: &[Vec<NodeId>], config: &ContentionConfig) -> Vec<f64> {
    let mut sim = Sim::new(topo.clone());
    let app = AppModel::Phased(fft_program(config.iterations));
    let handles: Vec<_> = placements.iter().map(|p| app.launch(&mut sim, p)).collect();
    sim.run();
    handles
        .iter()
        .map(|h| h.elapsed().expect("job finished: the simulator ran dry"))
        .collect()
}

/// Runs one cell: K placement decisions through a fresh service, then
/// all K jobs concurrently through simnet. Fully deterministic.
pub fn run_contention(
    testbed: ContentionTestbed,
    regime: ContentionRegime,
    k: usize,
    config: &ContentionConfig,
) -> ContentionOutcome {
    let topo = testbed.topology();
    let snap = Arc::new(NetSnapshot::capture(Arc::new(topo.clone())));
    let svc = PlacementService::new(snap, ServiceConfig::default());
    let mut request = SelectionRequest::balanced(config.m);
    request.reference_bandwidth = Some(config.reference_bandwidth);
    let placements: Vec<Vec<NodeId>> = (0..k)
        .map(|_| match regime {
            ContentionRegime::Oblivious => {
                svc.get(&request)
                    .result
                    .expect("testbed has enough nodes")
                    .nodes
            }
            ContentionRegime::LedgerAware => {
                svc.admit(&request)
                    .expect("testbed has enough nodes")
                    .selection
                    .nodes
            }
        })
        .collect();
    let solo = run_jobs(&topo, &placements[..1], config)[0];
    let elapsed = run_jobs(&topo, &placements, config);
    let makespan = elapsed.iter().cloned().fold(0.0, f64::max);
    let total_elapsed = elapsed.iter().sum();
    let slowdowns: Vec<f64> = elapsed.iter().map(|e| e / solo).collect();
    let distinct_nodes = placements.iter().flatten().collect::<HashSet<_>>().len();
    ContentionOutcome {
        testbed,
        regime,
        k,
        elapsed,
        solo,
        makespan,
        total_elapsed,
        mean_slowdown: mean(&slowdowns),
        distinct_nodes,
    }
}

/// Runs the full grid: both testbeds x both regimes x every K in `ks`.
pub fn run_contention_study(ks: &[usize], config: &ContentionConfig) -> Vec<ContentionOutcome> {
    let mut cells = Vec::new();
    for testbed in [ContentionTestbed::Cmu, ContentionTestbed::Federated] {
        for &k in ks {
            for regime in [ContentionRegime::Oblivious, ContentionRegime::LedgerAware] {
                cells.push(run_contention(testbed, regime, k, config));
            }
        }
    }
    cells
}

/// Renders the study as an aligned text table.
pub fn render_contention_table(cells: &[ContentionOutcome]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>2} {:<13} {:>9} {:>10} {:>10} {:>9} {:>8}\n",
        "testbed", "K", "regime", "solo_s", "total_s", "makespan", "slowdown", "spread"
    ));
    for c in cells {
        out.push_str(&format!(
            "{:<10} {:>2} {:<13} {:>9.1} {:>10.1} {:>10.1} {:>8.2}x {:>7}n\n",
            c.testbed.label(),
            c.k,
            c.regime.label(),
            c.solo,
            c.total_elapsed,
            c.makespan,
            c.mean_slowdown,
            c.distinct_nodes,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_aware_spreads_and_beats_oblivious_at_k4_federated() {
        let config = ContentionConfig::default();
        let oblivious = run_contention(
            ContentionTestbed::Federated,
            ContentionRegime::Oblivious,
            4,
            &config,
        );
        let aware = run_contention(
            ContentionTestbed::Federated,
            ContentionRegime::LedgerAware,
            4,
            &config,
        );
        // Oblivious answers are all the same m nodes; aware admissions
        // must spread onto fresh capacity.
        assert_eq!(oblivious.distinct_nodes, config.m);
        assert!(
            aware.distinct_nodes > oblivious.distinct_nodes,
            "admissions did not spread: {} nodes",
            aware.distinct_nodes
        );
        // The acceptance criterion: ledger-aware beats oblivious on
        // aggregate elapsed time at K = 4 on the federated testbed.
        assert!(
            aware.total_elapsed < oblivious.total_elapsed,
            "aware {} s vs oblivious {} s",
            aware.total_elapsed,
            oblivious.total_elapsed
        );
        // And both share the same solo baseline by construction.
        assert_eq!(aware.solo.to_bits(), oblivious.solo.to_bits());
    }

    #[test]
    fn study_grid_covers_both_testbeds_and_regimes() {
        let config = ContentionConfig {
            iterations: 2,
            ..ContentionConfig::default()
        };
        let cells = run_contention_study(&[2], &config);
        assert_eq!(cells.len(), 4);
        let table = render_contention_table(&cells);
        assert!(table.contains("cmu"));
        assert!(table.contains("federated"));
        assert!(table.contains("ledger-aware"));
    }
}
